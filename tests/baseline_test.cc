// Tests for the baseline fuzzers: transport cost models, desock
// compatibility/boundary loss, AFLNet state feedback, the no-state
// pure-ftpd OOM, and the qualitative throughput ordering of Table 3.

#include <gtest/gtest.h>

#include "src/baselines/baseline.h"
#include "src/fuzz/fuzzer.h"
#include "src/mario/mario_target.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

EngineConfig SmallEngineConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 512;
  cfg.vm.disk_sectors = 256;
  return cfg;
}

// Campaigns are deterministic in virtual time; wall budgets are only a
// safety valve. Sanitizer builds run ~15x slower, so widen the valve there
// to keep the exec count (and thus the outcome) identical across configs.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kWallScale = 10.0;
#else
constexpr double kWallScale = 1.0;
#endif

CampaignLimits ShortLimits(double vtime = 30.0) {
  CampaignLimits limits;
  limits.vtime_seconds = vtime;
  limits.wall_seconds = 60.0 * kWallScale;
  return limits;
}

BaselineConfig Cfg(BaselineKind kind, uint64_t seed = 1) {
  BaselineConfig c;
  c.kind = kind;
  c.seed = seed;
  return c;
}

TEST(BaselineTest, NamesAreStable) {
  EXPECT_STREQ(BaselineName(BaselineKind::kAflnet), "aflnet");
  EXPECT_STREQ(BaselineName(BaselineKind::kAflppDesock), "afl++-desock");
  EXPECT_STREQ(BaselineName(BaselineKind::kIjon), "ijon");
}

TEST(BaselineTest, AflnetRunsLightFtp) {
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();
  BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflnet));
  for (auto& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  CampaignResult r = fuzzer.Run(ShortLimits());
  EXPECT_GT(r.execs, 10u);
  EXPECT_GT(r.branch_coverage, 20u);
  EXPECT_TRUE(r.crashes.empty());
}

TEST(BaselineTest, DesockRejectsIncompatibleTargets) {
  auto reg = FindTarget("kamailio");  // UDP multi-socket: n/a for desock
  Spec spec = reg->make_spec();
  BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflppDesock));
  EXPECT_FALSE(fuzzer.supported());
  CampaignResult r = fuzzer.Run(ShortLimits());
  EXPECT_EQ(r.execs, 0u);
}

TEST(BaselineTest, DesockLosesPacketBoundariesButRuns) {
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();
  BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflppDesock));
  ASSERT_TRUE(fuzzer.supported());
  for (auto& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  CampaignResult r = fuzzer.Run(ShortLimits());
  EXPECT_GT(r.execs, 10u);
  EXPECT_GT(r.branch_coverage, 10u);
}

TEST(BaselineTest, NyxOutperformsAflnetThroughput) {
  // The headline Table 3 relation, on one target, in miniature.
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();

  BaselineFuzzer aflnet(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflnet));
  for (auto& s : reg->make_seeds(spec)) {
    aflnet.AddSeed(s);
  }
  CampaignResult aflnet_result = aflnet.Run(ShortLimits(30.0));

  FuzzerConfig nyx_cfg;
  nyx_cfg.policy = PolicyMode::kNone;
  NyxFuzzer nyx(SmallEngineConfig(), reg->factory, spec, nyx_cfg);
  for (auto& s : reg->make_seeds(spec)) {
    nyx.AddSeed(s);
  }
  CampaignResult nyx_result = nyx.Run(ShortLimits(30.0));

  ASSERT_GT(aflnet_result.execs_per_vsecond, 0.0);
  // Nyx-Net's lightftp advantage in the paper is ~250x; require at least 50x.
  EXPECT_GT(nyx_result.execs_per_vsecond, 50.0 * aflnet_result.execs_per_vsecond);
}

TEST(BaselineTest, AflnwePaysNoStateMachineCost) {
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();
  BaselineFuzzer aflnwe(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflnwe));
  for (auto& s : reg->make_seeds(spec)) {
    aflnwe.AddSeed(s);
  }
  CampaignResult r = aflnwe.Run(ShortLimits());
  EXPECT_GT(r.execs, 10u);
}

TEST(BaselineTest, NoStateVariantTriggersPureFtpdOom) {
  // Table 1 footnote (*): only the variant that keeps the server process
  // alive across executions accumulates enough leaked state to trip the
  // internal allocation limit.
  auto reg = FindTarget("pure-ftpd");
  Spec spec = reg->make_spec();

  BaselineConfig no_state = Cfg(BaselineKind::kAflnetNoState);
  no_state.no_state_restart_period = 1u << 30;  // never restart
  BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec, no_state);
  for (auto& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  CampaignLimits limits = ShortLimits(1e9);
  limits.max_execs = 8000;
  limits.wall_seconds = 90.0 * kWallScale;
  limits.stop_on_crash = true;
  limits.stop_on_crash_id = kCrashPureFtpdOom;
  CampaignResult r = fuzzer.Run(limits);
  EXPECT_TRUE(r.FoundCrash(kCrashPureFtpdOom))
      << "no-state fuzzing should eventually hit the internal limit";

  // The restarting AFLNet never does within the same execution count.
  BaselineFuzzer restarting(SmallEngineConfig(), reg->factory, spec,
                            Cfg(BaselineKind::kAflnet));
  for (auto& s : reg->make_seeds(spec)) {
    restarting.AddSeed(s);
  }
  CampaignResult r2 = restarting.Run(limits);
  EXPECT_FALSE(r2.FoundCrash(kCrashPureFtpdOom));
}

TEST(BaselineTest, AflnetFindsEasyCrashes) {
  auto reg = FindTarget("live555");
  Spec spec = reg->make_spec();
  BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec,
                        Cfg(BaselineKind::kAflnet, 1));
  for (auto& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  // AFLNet finds the live555 Range crash within its 24-virtual-hour budget
  // (Table 1); observed discovery is at 20k-50k virtual seconds.
  CampaignLimits limits;
  limits.vtime_seconds = 86400.0;
  limits.wall_seconds = 120.0 * kWallScale;
  limits.stop_on_crash = true;
  limits.stop_on_crash_id = kCrashLive555RangeNull;
  CampaignResult r = fuzzer.Run(limits);
  EXPECT_TRUE(r.FoundCrash(kCrashLive555RangeNull)) << "after " << r.execs << " execs";
}

TEST(BaselineTest, IjonBaselineSolvesFlatMarioLevel) {
  Spec spec = Spec::GenericNetwork();
  auto factory = [] { return MakeMarioTarget("1-4"); };
  BaselineConfig cfg = Cfg(BaselineKind::kIjon, 7);
  cfg.per_byte_extra_ns = 54'000;  // fork-server frame overhead
  BaselineFuzzer fuzzer(SmallEngineConfig(), factory, spec, cfg);
  const LevelDef* lv = FindLevel("1-4");
  fuzzer.AddSeed(MarioSeed(spec, *lv, 64));
  CampaignLimits limits;
  limits.vtime_seconds = 36000.0;
  limits.wall_seconds = 120.0 * kWallScale;
  limits.ijon_goal = static_cast<uint64_t>(lv->length) * kSub;
  CampaignResult r = fuzzer.Run(limits);
  EXPECT_GE(r.ijon_best, limits.ijon_goal / 2)
      << "IJON feedback must at least reach halfway";
}

TEST(BaselineTest, DeterministicWithSeed) {
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();
  CampaignResult results[2];
  for (int i = 0; i < 2; i++) {
    BaselineFuzzer fuzzer(SmallEngineConfig(), reg->factory, spec,
                          Cfg(BaselineKind::kAflnet, 99));
    for (auto& s : reg->make_seeds(spec)) {
      fuzzer.AddSeed(s);
    }
    results[i] = fuzzer.Run(ShortLimits(20.0));
  }
  EXPECT_EQ(results[0].execs, results[1].execs);
  EXPECT_EQ(results[0].branch_coverage, results[1].branch_coverage);
}

}  // namespace
}  // namespace nyx
