// Property tests for the network emulation layer: serialization robustness
// against fuzzed blobs, snapshot-restore equivalence under random operation
// sequences, and conservation of delivered bytes.

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/netemu/netemu.h"

namespace nyx {
namespace {

class NetEmuPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetEmuPropertyTest, FuzzedSnapshotsNeverCrashDeserialize) {
  Rng rng(GetParam());
  NetEmu net;
  for (int i = 0; i < 300; i++) {
    Bytes junk;
    const uint64_t len = rng.Below(512);
    for (uint64_t j = 0; j < len; j++) {
      junk.push_back(rng.NextByte());
    }
    NetEmu victim;
    victim.Deserialize(junk);  // must not crash; result may be false
  }
}

TEST_P(NetEmuPropertyTest, TruncatedRealSnapshotsNeverCrash) {
  Rng rng(GetParam());
  NetEmu net;
  int lfd = net.Socket(SockKind::kStream);
  net.Bind(lfd, 80);
  net.Listen(lfd, 4);
  int conn = net.QueueConnection(80);
  int cfd = net.Accept(lfd);
  net.DeliverPacket(conn, ToBytes("payload-bytes"));
  net.Send(cfd, "resp", 4);
  const Bytes blob = net.Serialize();
  for (int i = 0; i < 200; i++) {
    Bytes cut(blob.begin(), blob.begin() + static_cast<long>(rng.Below(blob.size() + 1)));
    NetEmu victim;
    victim.Deserialize(cut);
  }
}

TEST_P(NetEmuPropertyTest, SerializeRoundTripPreservesBehaviour) {
  // Drive a random operation sequence on one instance; snapshot it; drive
  // the SAME remaining reads on the original and the restored copy — the
  // results must be identical.
  Rng rng(GetParam());
  NetEmu original;
  int lfd = original.Socket(SockKind::kStream);
  original.Bind(lfd, 80);
  original.Listen(lfd, 8);

  std::vector<int> conns;
  std::vector<int> fds;
  for (int step = 0; step < 60; step++) {
    switch (rng.Below(4)) {
      case 0: {
        int c = original.QueueConnection(80);
        int fd = original.Accept(lfd);
        if (c >= 0 && fd >= 0) {
          conns.push_back(c);
          fds.push_back(fd);
        }
        break;
      }
      case 1:
        if (!conns.empty()) {
          Bytes data;
          const uint64_t n = 1 + rng.Below(32);
          for (uint64_t i = 0; i < n; i++) {
            data.push_back(rng.NextByte());
          }
          original.DeliverPacket(rng.Choice(conns), std::move(data));
        }
        break;
      case 2:
        if (!fds.empty()) {
          uint8_t buf[16];
          original.Recv(rng.Choice(fds), buf, rng.Below(sizeof(buf)) + 1);
        }
        break;
      case 3:
        if (!fds.empty()) {
          original.Send(rng.Choice(fds), "ok", 2);
        }
        break;
    }
  }

  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(original.Serialize()));

  for (int step = 0; step < 40; step++) {
    if (fds.empty()) {
      break;
    }
    const int fd = rng.Choice(fds);
    const size_t len = rng.Below(24) + 1;
    uint8_t a[32];
    uint8_t b[32];
    memset(a, 0, sizeof(a));
    memset(b, 0, sizeof(b));
    const int ra = original.Recv(fd, a, len);
    const int rb = restored.Recv(fd, b, len);
    ASSERT_EQ(ra, rb) << "step " << step;
    if (ra > 0) {
      ASSERT_EQ(0, memcmp(a, b, static_cast<size_t>(ra)));
    }
  }
}

TEST_P(NetEmuPropertyTest, DeliveredBytesAreConserved) {
  // Every byte delivered is either read by the target or still undelivered;
  // nothing is duplicated or lost.
  Rng rng(GetParam());
  NetEmu net;
  int lfd = net.Socket(SockKind::kStream);
  net.Bind(lfd, 80);
  net.Listen(lfd, 4);
  const int conn = net.QueueConnection(80);
  const int cfd = net.Accept(lfd);
  ASSERT_GE(cfd, 0);

  size_t delivered = 0;
  size_t consumed = 0;
  for (int step = 0; step < 400; step++) {
    if (rng.Chance(1, 2)) {
      const uint64_t n = 1 + rng.Below(64);
      delivered += n;
      net.DeliverPacket(conn, Bytes(n, 0xab));
    } else {
      uint8_t buf[48];
      const int r = net.Recv(cfd, buf, rng.Below(sizeof(buf)) + 1);
      if (r > 0) {
        consumed += static_cast<size_t>(r);
      }
    }
    ASSERT_EQ(consumed + net.UndeliveredBytes(), delivered) << "step " << step;
  }
}

TEST_P(NetEmuPropertyTest, DeliveredBytesAreConservedUnderFaults) {
  // With random fault injection in the mix the ledger gains one more column:
  // every delivered byte is consumed, still queued, or dropped by a fault
  // (connection reset). The three must always sum to the deliveries.
  Rng rng(GetParam());
  NetEmu net;
  int lfd = net.Socket(SockKind::kStream);
  net.Bind(lfd, 80);
  net.Listen(lfd, 8);

  std::vector<int> conns;
  std::vector<int> fds;
  auto fresh_conn = [&]() {
    int c = net.QueueConnection(80);
    int fd = net.Accept(lfd);
    if (c >= 0 && fd >= 0) {
      conns.push_back(c);
      fds.push_back(fd);
    }
  };
  fresh_conn();
  ASSERT_FALSE(fds.empty());

  size_t delivered = 0;
  size_t consumed = 0;
  for (int step = 0; step < 500; step++) {
    switch (rng.Below(5)) {
      case 0:
        if (conns.size() < 6) {
          fresh_conn();
        }
        break;
      case 1: {
        const uint64_t n = 1 + rng.Below(64);
        if (net.DeliverPacket(rng.Choice(conns), Bytes(n, 0xcd))) {
          delivered += n;
        }
        break;
      }
      case 2: {
        uint8_t buf[48];
        const int r = net.Recv(rng.Choice(fds), buf, rng.Below(sizeof(buf)) + 1);
        if (r > 0) {
          consumed += static_cast<size_t>(r);
        }
        break;
      }
      case 3:
        net.Send(rng.Choice(fds), "reply", 5);
        break;
      case 4: {
        FaultPlan plan;
        plan.kind = static_cast<FaultKind>(rng.Below(kFaultKindCount));
        plan.count = static_cast<uint8_t>(1 + rng.Below(kMaxFaultBurst));
        plan.arg = static_cast<uint16_t>(rng.Below(64));
        net.QueueFault(rng.Choice(conns), plan);
        break;
      }
    }
    ASSERT_EQ(consumed + net.UndeliveredBytes() + net.faulted_bytes(), delivered)
        << "step " << step;
  }
}

TEST_P(NetEmuPropertyTest, SnapshotMidBurstEqualsUninterrupted) {
  // Core determinism property for fault replay: running a faulted operation
  // sequence straight through must be indistinguishable from serializing the
  // emulator mid-burst and finishing on a restored copy. Drives the same
  // random tail on both instances and compares every return value and byte.
  Rng setup_rng(GetParam());
  NetEmu original;
  int lfd = original.Socket(SockKind::kStream);
  original.Bind(lfd, 80);
  original.Listen(lfd, 8);
  const int conn = original.QueueConnection(80);
  const int cfd = original.Accept(lfd);
  ASSERT_GE(cfd, 0);

  // Arm a pile of faults and burn a random prefix of them so the snapshot
  // lands mid-burst, then top up rx so the tail has bytes to fight over.
  for (int i = 0; i < 8; i++) {
    FaultPlan plan;
    plan.kind = static_cast<FaultKind>(setup_rng.Below(kFaultKindCount));
    plan.count = static_cast<uint8_t>(1 + setup_rng.Below(kMaxFaultBurst));
    plan.arg = static_cast<uint16_t>(1 + setup_rng.Below(16));
    original.QueueFault(conn, plan);
  }
  original.DeliverPacket(conn, Bytes(64, 0x5a));
  const uint64_t prefix = setup_rng.Below(6);
  for (uint64_t i = 0; i < prefix; i++) {
    uint8_t buf[8];
    original.Recv(cfd, buf, sizeof(buf));
  }
  original.DeliverPacket(conn, Bytes(32, 0xa5));

  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(original.Serialize()));
  // faulted_bytes is an observational counter (deliberately not serialized,
  // like calls()), so compare per-instance deltas from here on.
  const uint64_t base_orig = original.faulted_bytes();
  const uint64_t base_rest = restored.faulted_bytes();

  Rng tail_rng(GetParam() ^ 0x7461696cull);
  for (int step = 0; step < 60; step++) {
    if (tail_rng.Chance(1, 4)) {
      const Bytes pkt(1 + tail_rng.Below(16), 0x33);
      ASSERT_EQ(original.DeliverPacket(conn, pkt), restored.DeliverPacket(conn, pkt));
      continue;
    }
    const size_t len = 1 + tail_rng.Below(24);
    uint8_t a[32];
    uint8_t b[32];
    memset(a, 0, sizeof(a));
    memset(b, 0, sizeof(b));
    const int ra = original.Recv(cfd, a, len);
    const int rb = restored.Recv(cfd, b, len);
    ASSERT_EQ(ra, rb) << "step " << step;
    if (ra > 0) {
      ASSERT_EQ(0, memcmp(a, b, static_cast<size_t>(ra)));
    }
    ASSERT_EQ(original.faulted_bytes() - base_orig, restored.faulted_bytes() - base_rest)
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetEmuPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace nyx
