// Tests for the fuzzer loop, corpus, policies and mutators.

#include <gtest/gtest.h>

#include <set>

#include "src/fuzz/fuzzer.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

EngineConfig SmallEngineConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  cfg.vm.disk_sectors = 256;
  return cfg;
}

Program FtpSeed(const Spec& spec) {
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "USER anonymous\r\n");
  b.Packet(con, "PASS guest\r\n");
  b.Packet(con, "CWD /files\r\n");
  b.Packet(con, "STOR data.bin\r\n");
  b.Packet(con, "LIST\r\n");
  return *b.Build();
}

TEST(PolicyTest, NoneAlwaysRoot) {
  SnapshotPolicy policy(PolicyMode::kNone, 1);
  AggressiveCursor cursor;
  for (int i = 0; i < 50; i++) {
    EXPECT_FALSE(policy.Decide(100, cursor, false).use_incremental);
  }
}

TEST(PolicyTest, ShortInputsAlwaysRoot) {
  for (PolicyMode mode : {PolicyMode::kBalanced, PolicyMode::kAggressive}) {
    SnapshotPolicy policy(mode, 1);
    AggressiveCursor cursor;
    for (size_t packets = 0; packets < kMinPacketsForSnapshot; packets++) {
      EXPECT_FALSE(policy.Decide(packets, cursor, false).use_incremental)
          << PolicyName(mode) << " packets=" << packets;
    }
  }
}

TEST(PolicyTest, BalancedDistribution) {
  SnapshotPolicy policy(PolicyMode::kBalanced, 42);
  AggressiveCursor cursor;
  constexpr size_t kPackets = 20;
  constexpr int kTrials = 20000;
  int root = 0;
  int second_half = 0;
  int incremental = 0;
  for (int i = 0; i < kTrials; i++) {
    auto d = policy.Decide(kPackets, cursor, false);
    if (!d.use_incremental) {
      root++;
      continue;
    }
    incremental++;
    ASSERT_LT(d.packet_index, kPackets - 1);  // never after the last packet
    if (d.packet_index >= kPackets / 2) {
      second_half++;
    }
  }
  // ~4% root.
  EXPECT_NEAR(static_cast<double>(root) / kTrials, 0.04, 0.01);
  // 50% whole-range + 50% second-half => ~75% of placements in second half.
  EXPECT_NEAR(static_cast<double>(second_half) / incremental, 0.75, 0.04);
}

TEST(PolicyTest, AggressiveCyclesFromEnd) {
  SnapshotPolicy policy(PolicyMode::kAggressive, 7);
  AggressiveCursor cursor;
  const size_t n = 6;
  auto d = policy.Decide(n, cursor, false);
  EXPECT_TRUE(d.use_incremental);
  EXPECT_EQ(d.packet_index, n - 2);  // starts at the end

  // 50 fruitless schedules move the snapshot one packet earlier.
  for (uint64_t i = 0; i < kFruitlessThreshold; i++) {
    d = policy.Decide(n, cursor, false);
  }
  EXPECT_EQ(d.packet_index, n - 3);

  // Finding new inputs resets the fruitless counter.
  d = policy.Decide(n, cursor, true);
  EXPECT_EQ(d.packet_index, n - 3);
  EXPECT_EQ(cursor.fruitless, 0u);

  // Cycle all the way down: wraps back to the end.
  for (size_t steps = 0; steps < (n - 2) * kFruitlessThreshold; steps++) {
    d = policy.Decide(n, cursor, false);
  }
  EXPECT_EQ(d.packet_index, n - 2);
}

TEST(MutatorTest, NeverTouchesPrefix) {
  Spec spec = Spec::GenericNetwork();
  Program seed = FtpSeed(spec);
  Mutator mutator(spec, 99);
  const auto packets = seed.PacketOpIndices(spec);
  const size_t first_mutable = packets[2] + 1;  // prefix: conn + 3 packets

  for (int trial = 0; trial < 300; trial++) {
    Program mutated = seed;
    mutator.Mutate(mutated, {}, first_mutable);
    ASSERT_TRUE(mutated.Validate(spec));
    ASSERT_GE(mutated.ops.size(), first_mutable);
    for (size_t i = 0; i < first_mutable; i++) {
      ASSERT_EQ(mutated.ops[i].node_type, seed.ops[i].node_type) << "trial " << trial;
      ASSERT_EQ(mutated.ops[i].data, seed.ops[i].data) << "trial " << trial;
      ASSERT_EQ(mutated.ops[i].args, seed.ops[i].args) << "trial " << trial;
    }
  }
}

TEST(MutatorTest, ProducesDiverseOutputs) {
  Spec spec = Spec::GenericNetwork();
  Program seed = FtpSeed(spec);
  Mutator mutator(spec, 5);
  std::set<Bytes> variants;
  for (int i = 0; i < 100; i++) {
    Program mutated = seed;
    mutator.Mutate(mutated, {}, 0);
    variants.insert(mutated.Serialize());
  }
  EXPECT_GT(variants.size(), 60u);
}

TEST(MutatorTest, SpliceUsesDonors) {
  Spec spec = Spec::GenericNetwork();
  Program seed = FtpSeed(spec);
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "DONOR-MARKER-PAYLOAD\r\n");
  Program donor = *b.Build();

  Mutator mutator(spec, 3);
  std::vector<const Program*> donors = {&donor};
  bool found_donor_material = false;
  for (int i = 0; i < 500 && !found_donor_material; i++) {
    Program mutated = seed;
    mutator.Mutate(mutated, donors, 0);
    for (const Op& op : mutated.ops) {
      if (ToString(op.data).find("DONOR-MARKER") != std::string::npos) {
        found_donor_material = true;
      }
    }
  }
  EXPECT_TRUE(found_donor_material);
}

TEST(CorpusTest, PickPrefersLessPicked) {
  Corpus corpus;
  Spec spec = Spec::GenericNetwork();
  for (int i = 0; i < 4; i++) {
    corpus.Add(FtpSeed(spec), 1000, 5, 0.0);
  }
  Rng rng(1);
  std::map<uint64_t, int> pick_counts;
  for (int i = 0; i < 400; i++) {
    corpus.Pick(rng);
  }
  uint64_t total = 0;
  for (size_t i = 0; i < corpus.size(); i++) {
    total += corpus.entry(i).picks;
    EXPECT_GT(corpus.entry(i).picks, 50u);  // all entries get scheduled
  }
  EXPECT_EQ(total, 400u);
}

TEST(FuzzerTest, FindsCoverageOnLightFtp) {
  Spec spec = Spec::GenericNetwork();
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  fcfg.seed = 11;
  NyxFuzzer fuzzer(SmallEngineConfig(), MakeLightFtp, spec, fcfg);
  fuzzer.AddSeed(FtpSeed(spec));

  CampaignLimits limits;
  limits.vtime_seconds = 3.0;
  limits.wall_seconds = 30.0;
  CampaignResult result = fuzzer.Run(limits);

  EXPECT_GT(result.execs, 100u);
  EXPECT_GT(result.branch_coverage, 30u);  // well beyond the seed's coverage
  EXPECT_GT(result.corpus_size, 1u);
  EXPECT_TRUE(result.crashes.empty());  // lightftp has no seeded bug
  EXPECT_FALSE(result.coverage_over_time.empty());
  // Coverage series is monotone.
  double prev = 0;
  for (const auto& [t, v] : result.coverage_over_time.points()) {
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(FuzzerTest, PoliciesChangeSnapshotUsage) {
  Spec spec = Spec::GenericNetwork();
  CampaignLimits limits;
  limits.vtime_seconds = 2.0;
  limits.wall_seconds = 30.0;

  FuzzerConfig none_cfg;
  none_cfg.policy = PolicyMode::kNone;
  NyxFuzzer none(SmallEngineConfig(), MakeLightFtp, spec, none_cfg);
  none.AddSeed(FtpSeed(spec));
  CampaignResult none_result = none.Run(limits);
  EXPECT_EQ(none_result.incremental_creates, 0u);

  FuzzerConfig aggr_cfg;
  aggr_cfg.policy = PolicyMode::kAggressive;
  NyxFuzzer aggr(SmallEngineConfig(), MakeLightFtp, spec, aggr_cfg);
  aggr.AddSeed(FtpSeed(spec));
  CampaignResult aggr_result = aggr.Run(limits);
  EXPECT_GT(aggr_result.incremental_creates, 0u);
  EXPECT_GT(aggr_result.incremental_restores, aggr_result.incremental_creates);
  // Skipping prefixes buys throughput.
  EXPECT_GT(aggr_result.execs, none_result.execs);
}

TEST(FuzzerTest, DeterministicWithSameSeed) {
  Spec spec = Spec::GenericNetwork();
  CampaignLimits limits;
  limits.vtime_seconds = 1.0;
  limits.wall_seconds = 30.0;
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  fcfg.seed = 77;

  NyxFuzzer a(SmallEngineConfig(), MakeLightFtp, spec, fcfg);
  a.AddSeed(FtpSeed(spec));
  CampaignResult ra = a.Run(limits);

  NyxFuzzer b(SmallEngineConfig(), MakeLightFtp, spec, fcfg);
  b.AddSeed(FtpSeed(spec));
  CampaignResult rb = b.Run(limits);

  EXPECT_EQ(ra.execs, rb.execs);
  EXPECT_EQ(ra.branch_coverage, rb.branch_coverage);
  EXPECT_EQ(ra.corpus_size, rb.corpus_size);
}

TEST(FuzzerTest, RunsWithoutSeeds) {
  Spec spec = Spec::GenericNetwork();
  FuzzerConfig fcfg;
  NyxFuzzer fuzzer(SmallEngineConfig(), MakeLightFtp, spec, fcfg);
  CampaignLimits limits;
  limits.vtime_seconds = 0.5;
  limits.wall_seconds = 20.0;
  CampaignResult result = fuzzer.Run(limits);
  EXPECT_GT(result.execs, 10u);
  EXPECT_GT(result.branch_coverage, 0u);
}

TEST(FuzzerTest, ExecCapRespected) {
  Spec spec = Spec::GenericNetwork();
  FuzzerConfig fcfg;
  NyxFuzzer fuzzer(SmallEngineConfig(), MakeLightFtp, spec, fcfg);
  fuzzer.AddSeed(FtpSeed(spec));
  CampaignLimits limits;
  limits.vtime_seconds = 1e9;
  limits.max_execs = 50;
  limits.wall_seconds = 20.0;
  CampaignResult result = fuzzer.Run(limits);
  EXPECT_LE(result.execs, 51u);
}

}  // namespace
}  // namespace nyx
