// Tests for the Super Mario substrate: level geometry, platformer physics,
// the wall-jump glitch, speedrun synthesis and the fuzz-target adapter.

#include <gtest/gtest.h>

#include "src/fuzz/engine.h"
#include "src/fuzz/fuzzer.h"
#include "src/mario/engine.h"
#include "src/mario/level.h"
#include "src/mario/mario_target.h"

namespace nyx {
namespace {

TEST(LevelTest, AllThirtyTwoLevelsExist) {
  EXPECT_EQ(AllLevels().size(), 32u);
  EXPECT_NE(FindLevel("1-1"), nullptr);
  EXPECT_NE(FindLevel("8-4"), nullptr);
  EXPECT_EQ(FindLevel("9-1"), nullptr);
  for (const LevelDef& lv : AllLevels()) {
    EXPECT_GT(lv.length, 100u) << lv.name;
    EXPECT_FALSE(lv.pits.empty()) << lv.name;
  }
}

TEST(LevelTest, GeometryQueries) {
  LevelDef lv;
  lv.length = 100;
  lv.pits.push_back({10, 3});
  lv.walls.push_back({20, 2});
  EXPECT_FALSE(lv.IsPit(9));
  EXPECT_TRUE(lv.IsPit(10));
  EXPECT_TRUE(lv.IsPit(12));
  EXPECT_FALSE(lv.IsPit(13));
  EXPECT_EQ(lv.WallHeight(20), 2u);
  EXPECT_EQ(lv.WallHeight(21), 0u);
}

LevelDef FlatLevel(uint16_t length = 100) {
  LevelDef lv;
  lv.name = "test";
  lv.length = length;
  return lv;
}

TEST(MarioEngineTest, RunsRightAtRunSpeed) {
  LevelDef lv = FlatLevel();
  MarioEngine engine(lv);
  MarioState st;
  for (int i = 0; i < 16; i++) {
    engine.Tick(st, kBtnRight | kBtnRun);
  }
  EXPECT_EQ(st.x, 2 * kSub + 16 * 4);
  EXPECT_TRUE(st.on_ground);
}

TEST(MarioEngineTest, JumpClearsFourTileGap) {
  LevelDef lv = FlatLevel();
  lv.pits.push_back({10, 4});
  MarioEngine engine(lv);
  MarioState st;
  bool pressed = false;
  for (int i = 0; i < 400 && !st.dead && !st.won; i++) {
    uint8_t buttons = kBtnRight | kBtnRun;
    const uint16_t ahead = static_cast<uint16_t>(st.x / kSub + 1);
    if (lv.IsPit(ahead) && st.on_ground && !pressed) {
      buttons |= kBtnJump;
      pressed = true;
    }
    engine.Tick(st, buttons);
  }
  EXPECT_FALSE(st.dead);
  EXPECT_GT(st.x / kSub, 14);
}

TEST(MarioEngineTest, SevenTileGapKills) {
  LevelDef lv = FlatLevel();
  lv.pits.push_back({10, 7});
  MarioEngine engine(lv);
  MarioState st;
  bool pressed = false;
  for (int i = 0; i < 400 && !st.dead && !st.won; i++) {
    uint8_t buttons = kBtnRight | kBtnRun;
    const uint16_t ahead = static_cast<uint16_t>(st.x / kSub + 1);
    if (lv.IsPit(ahead) && st.on_ground && !pressed) {
      buttons |= kBtnJump;
      pressed = true;
    }
    engine.Tick(st, buttons);
  }
  EXPECT_TRUE(st.dead);
}

TEST(MarioEngineTest, WallBlocksAndTallWallUnjumpable) {
  LevelDef lv = FlatLevel();
  lv.walls.push_back({10, 5});
  MarioEngine engine(lv);
  MarioState st;
  for (int i = 0; i < 300; i++) {
    uint8_t buttons = kBtnRight | kBtnRun;
    if (st.on_ground && i % 30 == 0) {
      buttons |= kBtnJump;
    }
    engine.Tick(st, buttons);
  }
  EXPECT_LT(st.x / kSub, 10);  // never passes the 5-tile wall
}

TEST(MarioEngineTest, ThreeTileWallJumpable) {
  LevelDef lv = FlatLevel();
  lv.walls.push_back({10, 3});
  MarioEngine engine(lv);
  MarioState st;
  bool cleared = false;
  for (int i = 0; i < 600 && !cleared; i++) {
    uint8_t buttons = kBtnRight | kBtnRun;
    const uint16_t ahead = static_cast<uint16_t>(st.x / kSub + 1);
    if (st.on_ground && lv.WallHeight(ahead) > 0 && !st.jump_held) {
      buttons |= kBtnJump;
    }
    engine.Tick(st, buttons);
    cleared = st.x / kSub > 11;
  }
  EXPECT_TRUE(cleared);
}

TEST(MarioEngineTest, WallJumpGlitchEscapesPit) {
  // Reproduce the 2-1 situation directly: fall into the pit, press jump on
  // an even frame while sliding on the far wall.
  const LevelDef* lv = FindLevel("2-1");
  ASSERT_NE(lv, nullptr);
  MarioEngine engine(*lv);
  MarioState st;
  bool escaped = false;
  bool jumped_at_edge = false;
  for (int i = 0; i < 5000 && !st.dead && !escaped; i++) {
    uint8_t buttons = kBtnRight | kBtnRun;
    const uint16_t col = static_cast<uint16_t>(st.x / kSub);
    if (!jumped_at_edge && st.on_ground && col >= 78) {
      // Full running jump off the pit edge.
      buttons |= kBtnJump;
      jumped_at_edge = true;
    } else if (jumped_at_edge && i % 3 == 0) {
      // In the pit: mash jump with period 3, so press frames alternate
      // parity and some land in the glitch's even-frame window (a period-2
      // pattern pins the parity and never triggers it).
      buttons |= kBtnJump;
    }
    engine.Tick(st, buttons);
    escaped = st.x / kSub >= 88;
  }
  EXPECT_TRUE(escaped);
  EXPECT_GT(st.wall_jumps, 0u);
}

TEST(MarioSpeedrunTest, SolvesAllLevelsExcept21) {
  Spec spec = Spec::GenericNetwork();
  for (const LevelDef& lv : AllLevels()) {
    uint32_t frames = 0;
    Program run = MarioSpeedrun(spec, lv, 64, &frames);
    if (lv.name == "2-1") {
      EXPECT_TRUE(run.ops.empty()) << "2-1 must not be solvable by perfect play";
    } else {
      EXPECT_FALSE(run.ops.empty()) << lv.name;
      EXPECT_GT(frames, lv.length) << lv.name;  // at least one frame per tile
    }
  }
}

EngineConfig MarioEngineConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 512;
  cfg.vm.disk_sectors = 64;
  return cfg;
}

TEST(MarioTargetTest, SpeedrunInputWinsThroughEngine) {
  const LevelDef* lv = FindLevel("1-1");
  Spec spec = Spec::GenericNetwork();
  NyxEngine engine(MarioEngineConfig(), [] { return MakeMarioTarget("1-1"); }, spec);
  engine.Boot();
  uint32_t frames = 0;
  Program run = MarioSpeedrun(spec, *lv, 64, &frames);
  CoverageMap cov;
  ExecResult r = engine.Run(run, cov);
  EXPECT_FALSE(r.crash.crashed);
  EXPECT_GE(r.ijon_max, static_cast<uint64_t>(MarioEngine(*lv).goal_x()));
}

TEST(MarioTargetTest, SeedMakesProgressButDoesNotWin) {
  const LevelDef* lv = FindLevel("1-1");
  Spec spec = Spec::GenericNetwork();
  NyxEngine engine(MarioEngineConfig(), [] { return MakeMarioTarget("1-1"); }, spec);
  engine.Boot();
  Program seed = MarioSeed(spec, *lv, 64);
  CoverageMap cov;
  ExecResult r = engine.Run(seed, cov);
  EXPECT_GT(r.ijon_max, static_cast<uint64_t>(10 * kSub));
  EXPECT_LT(r.ijon_max, static_cast<uint64_t>(MarioEngine(*lv).goal_x()));
}

TEST(MarioTargetTest, FuzzerSolvesShortLevel) {
  // End-to-end: the aggressive policy solves 1-1 within a small budget.
  const LevelDef* lv = FindLevel("1-1");
  Spec spec = Spec::GenericNetwork();
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kAggressive;
  fcfg.seed = 3;
  NyxFuzzer fuzzer(MarioEngineConfig(), [] { return MakeMarioTarget("1-1"); }, spec, fcfg);
  fuzzer.AddSeed(MarioSeed(spec, *lv, 64));
  CampaignLimits limits;
  limits.vtime_seconds = 3600.0;  // virtual hour
  limits.wall_seconds = 120.0;
  limits.ijon_goal = static_cast<uint64_t>(MarioEngine(*lv).goal_x());
  CampaignResult result = fuzzer.Run(limits);
  EXPECT_GE(result.ijon_best, limits.ijon_goal)
      << "solved only " << result.ijon_best << " of " << limits.ijon_goal;
  EXPECT_GE(result.ijon_goal_vsec, 0.0);
}

}  // namespace
}  // namespace nyx
