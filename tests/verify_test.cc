// Static verifier coverage: every rule id fires on a crafted invalid
// program (and only that rule, where the classes are independent), byte
// offsets point at the offending op, and the mutator's output always
// verifies clean — the debug-build post-condition in Mutator::Mutate holds
// over a long random campaign.

#include "src/spec/verify.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/mutator.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {
namespace {

Op MakeOp(uint8_t node_type, std::vector<uint16_t> args = {}, Bytes data = {}) {
  Op op;
  op.node_type = node_type;
  op.args = std::move(args);
  op.data = std::move(data);
  return op;
}

// MultiConnection: 0 = connection (produces conn), 1 = pkt (borrows conn,
// bytes payload), 2 = close (consumes conn).
Program ValidProgram() {
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(1, {0}, {'h', 'i'}));
  p.ops.push_back(MakeOp(2, {0}));
  return p;
}

TEST(VerifyTest, ValidProgramIsClean) {
  const Spec spec = Spec::MultiConnection();
  const Program p = ValidProgram();
  EXPECT_TRUE(spec::Verify(p, spec).ok());
  EXPECT_TRUE(spec::VerifyWire(p.Serialize(), spec).ok());
}

TEST(VerifyTest, DoubleConsumeIsUseAfterConsume) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(2, {0}));
  p.ops.push_back(MakeOp(2, {0}));  // conn 0 is already dead
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kUseAfterConsume);
  EXPECT_EQ(r.diags[0].op_index, 2u);
  // Serialize() layout: header(7) + connection(6) + close(8) = 21.
  EXPECT_EQ(r.diags[0].byte_offset, 21u);
}

TEST(VerifyTest, BorrowAfterConsumeIsUseAfterConsume) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(2, {0}));
  p.ops.push_back(MakeOp(1, {0}, {'x'}));  // borrow of a consumed value
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kUseAfterConsume);
}

TEST(VerifyTest, OutOfBoundsOperandIsUnbound) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(1, {5}, {'x'}));  // only value 0 exists
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kUnboundOperand);
  EXPECT_EQ(r.diags[0].op_index, 1u);
}

TEST(VerifyTest, WrongEdgeTypeIsTypeMismatch) {
  Spec spec;
  const int e_con = spec.AddEdgeType("conn");
  const int e_file = spec.AddEdgeType("file");
  spec.AddNodeType(NodeTypeDef{"open", NodeSemantic::kCustom, {e_file}, {}, {},
                               DataKind::kNone});
  spec.AddNodeType(NodeTypeDef{"pkt", NodeSemantic::kPacket, {}, {e_con}, {},
                               DataKind::kBytes});
  Program p;
  p.ops.push_back(MakeOp(0));              // produces a file value
  p.ops.push_back(MakeOp(1, {0}, {'x'}));  // pkt wants a conn
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kTypeMismatch);
}

TEST(VerifyTest, WrongOperandCountIsArityMismatch) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(1, {}, {'x'}));  // pkt takes one operand
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kArityMismatch);
}

TEST(VerifyTest, UnknownOpcodeIsRejected) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(42));
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kUnknownOpcode);
}

TEST(VerifyTest, PayloadOnDatalessNodeIsRejected) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0, {}, {'x'}));  // connection carries no payload
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kDataOnDatalessNode);
}

TEST(VerifyTest, ScalarPayloadWidthIsChecked) {
  Spec spec;
  spec.AddNodeType(NodeTypeDef{"setopt", NodeSemantic::kCustom, {}, {}, {},
                               DataKind::kU16});
  Program p;
  p.ops.push_back(MakeOp(0, {}, {1, 2, 3}));  // kU16 wants exactly 2 bytes
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kScalarDataWidth);
}

TEST(VerifyTest, OversizePayloadIsRejected) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(1, {0}, Bytes(kMaxOpDataBytes + 1, 0xaa)));
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kOversizeData);
}

TEST(VerifyTest, TooManyOpsIsRejected) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  for (size_t i = 0; i < kMaxProgramOps + 1; i++) {
    p.ops.push_back(MakeOp(0));
  }
  const spec::Result r = spec::Verify(p, spec);
  EXPECT_TRUE(r.Has(spec::Rule::kTooManyOps));
}

TEST(VerifyTest, SecondSnapshotMarkerIsDuplicate) {
  const Spec spec = Spec::MultiConnection();
  Program p = ValidProgram();
  p.InsertSnapshotAfterPacket(spec, 0);
  EXPECT_TRUE(spec::Verify(p, spec).ok());
  p.ops.insert(p.ops.begin() + 3, MakeOp(kSnapshotOpcode));
  const spec::Result r = spec::Verify(p, spec);
  EXPECT_TRUE(r.Has(spec::Rule::kDuplicateSnapshotMarker));
}

TEST(VerifyTest, MarkerNotAfterPacketIsPlacementError) {
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(kSnapshotOpcode));  // after connection, not a packet
  const spec::Result r = spec::Verify(p, spec);
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kSnapshotPlacement);
}

TEST(VerifyWireTest, ShortBufferAndBadMagicAndBadVersion) {
  const Spec spec = Spec::MultiConnection();
  EXPECT_TRUE(spec::VerifyWire(Bytes{1, 2, 3}, spec).Has(spec::Rule::kBadHeader));

  Bytes wire = ValidProgram().Serialize();
  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_TRUE(spec::VerifyWire(bad_magic, spec).Has(spec::Rule::kBadHeader));

  Bytes bad_version = wire;
  bad_version[4] = 9;
  const spec::Result r = spec::VerifyWire(bad_version, spec);
  ASSERT_TRUE(r.Has(spec::Rule::kBadHeader));
  EXPECT_EQ(r.diags[0].byte_offset, 4u);
}

TEST(VerifyWireTest, TruncatedEncodingIsRejectedWithOffset) {
  const Spec spec = Spec::MultiConnection();
  const Program p = ValidProgram();
  Bytes wire = p.Serialize();
  wire.resize(wire.size() - 3);  // chop into the close op's encoding
  const spec::Result r = spec::VerifyWire(wire, spec);
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kTruncated);
  // The close op starts at header(7) + connection(6) + pkt(10) = 23.
  EXPECT_EQ(r.diags[0].byte_offset, 23u);
  EXPECT_EQ(r.diags[0].op_index, 2u);
}

TEST(VerifyWireTest, TrailingBytesAreRejected) {
  const Spec spec = Spec::MultiConnection();
  Bytes wire = ValidProgram().Serialize();
  const size_t real_end = wire.size();
  wire.push_back(0);
  wire.push_back(0);
  const spec::Result r = spec::VerifyWire(wire, spec);
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].rule, spec::Rule::kTrailingBytes);
  EXPECT_EQ(r.diags[0].byte_offset, real_end);
}

TEST(VerifyWireTest, SemanticDiagsAgreeWithStructuralPass) {
  // The wire path must anchor semantic rules at the same byte offsets the
  // structural pass computes.
  const Spec spec = Spec::MultiConnection();
  Program p;
  p.ops.push_back(MakeOp(0));
  p.ops.push_back(MakeOp(2, {0}));
  p.ops.push_back(MakeOp(2, {0}));
  const spec::Result structural = spec::Verify(p, spec);
  const spec::Result wire = spec::VerifyWire(p.Serialize(), spec);
  ASSERT_EQ(structural.diags.size(), 1u);
  ASSERT_EQ(wire.diags.size(), 1u);
  EXPECT_EQ(wire.diags[0].rule, structural.diags[0].rule);
  EXPECT_EQ(wire.diags[0].byte_offset, structural.diags[0].byte_offset);
}

TEST(VerifyTest, VerifierIsStricterThanParse) {
  // Everything Parse accepts except scalar widths should verify; and
  // VerifyWire must reject whatever Parse rejects. Spot-check the scalar
  // case Parse lets through.
  Spec spec;
  spec.AddNodeType(NodeTypeDef{"setopt", NodeSemantic::kCustom, {}, {}, {},
                               DataKind::kU16});
  Program p;
  p.ops.push_back(MakeOp(0, {}, {1, 2, 3}));
  const Bytes wire = p.Serialize();
  EXPECT_TRUE(Program::Parse(wire, spec).has_value());
  EXPECT_TRUE(spec::VerifyWire(wire, spec).Has(spec::Rule::kScalarDataWidth));
}

TEST(VerifyTest, CorpusRejectsIllFormedPrograms) {
  const Spec spec = Spec::MultiConnection();
  Corpus corpus(&spec);
  ResetContractCounters();

  Program bad;
  bad.ops.push_back(MakeOp(1, {7}, {'x'}));
  EXPECT_FALSE(corpus.Add(bad, /*vtime_ns=*/1, /*packet_count=*/1, /*found_at_vsec=*/0.0));
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(GetContractCounters().soft_failures, 1u);

  EXPECT_TRUE(corpus.Add(ValidProgram(), 1, 1, 0.0));
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(GetContractCounters().soft_failures, 1u);
  ResetContractCounters();
}

TEST(CheckTest, ExpectCountsSoftFailures) {
  ResetContractCounters();
  EXPECT_TRUE(NYX_EXPECT(1 + 1 == 2));
  EXPECT_EQ(GetContractCounters().soft_failures, 0u);
  EXPECT_FALSE(NYX_EXPECT(1 + 1 == 3));
  EXPECT_FALSE(NYX_EXPECT(false));
  EXPECT_EQ(GetContractCounters().soft_failures, 2u);
  EXPECT_EQ(GetContractCounters().hard_failures, 0u);
  ResetContractCounters();
  EXPECT_EQ(GetContractCounters().soft_failures, 0u);
}

TEST(VerifyTest, TenThousandMutationsVerifyClean) {
  const Spec spec = Spec::GenericNetwork();
  Mutator mutator(spec, 0x5eed);

  Program seed;
  seed.ops.push_back(MakeOp(0));
  seed.ops.push_back(MakeOp(1, {0}, {'G', 'E', 'T', ' ', '/'}));
  seed.ops.push_back(MakeOp(1, {0}, {'\r', '\n'}));

  std::vector<Program> pool = {seed};
  Program current = seed;
  for (int i = 0; i < 10000; i++) {
    std::vector<const Program*> donors;
    donors.reserve(pool.size());
    for (const Program& d : pool) {
      donors.push_back(&d);
    }
    mutator.Mutate(current, donors, /*first_mutable_op=*/0);
    const spec::Result verdict = spec::Verify(current, spec);
    ASSERT_TRUE(verdict.ok()) << "iteration " << i << ": " << verdict.Summary();
    // Grow the donor pool occasionally so splice mutations get variety.
    if (i % 1000 == 999 && pool.size() < 8) {
      pool.push_back(current);
    }
  }
}

}  // namespace
}  // namespace nyx
