// End-to-end tests for the deterministic fault-injection dimension ("No
// Peer, no Cry"): the verifier's fault-plan rule, Repair's payload
// sanitization, the mutator knob that gates fault ops, and whole faulted
// campaigns — which must be repeat-identical and replay divergence-free
// under the snapshot auditor, since fault state snapshots with the emulator.

#include <gtest/gtest.h>

#include "src/fuzz/fuzzer.h"
#include "src/spec/builder.h"
#include "src/spec/fault_plan.h"
#include "src/spec/verify.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

// Builds USER/PASS/CWD traffic with a well-formed fault op armed before the
// last packet, so executing the program actually fires the fault.
Program FaultedSeed(const Spec& spec) {
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "USER anonymous\r\n");
  b.Packet(con, "PASS x\r\n");
  b.Node("fault", {con}, FaultPlan{FaultKind::kShortRead, 2, 3}.Encode());
  b.Packet(con, "CWD /tmp\r\n");
  Program p = *b.Build();
  return p;
}

size_t FaultOpIndex(const Program& p, const Spec& spec) {
  for (size_t i = 0; i < p.ops.size(); i++) {
    if (!p.ops[i].is_snapshot() &&
        spec.node_type(p.ops[i].node_type).semantic == NodeSemantic::kFault) {
      return i;
    }
  }
  ADD_FAILURE() << "no fault op in program";
  return 0;
}

size_t CountFaultOps(const Program& p, const Spec& spec) {
  size_t n = 0;
  for (const Op& op : p.ops) {
    if (!op.is_snapshot() &&
        spec.node_type(op.node_type).semantic == NodeSemantic::kFault) {
      n++;
    }
  }
  return n;
}

TEST(FaultInjectionTest, BuilderAcceptsWellFormedFaultOp) {
  const Spec spec = Spec::GenericNetwork();
  const Program p = FaultedSeed(spec);
  EXPECT_TRUE(spec::Verify(p, spec).ok());
  EXPECT_EQ(CountFaultOps(p, spec), 1u);
}

TEST(FaultInjectionTest, VerifierFlagsIllFormedFaultPlans) {
  const Spec spec = Spec::GenericNetwork();

  // Unknown fault kind.
  Program p = FaultedSeed(spec);
  p.ops[FaultOpIndex(p, spec)].data = {99, 1, 0, 0};
  spec::Result r = spec::Verify(p, spec);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(spec::Rule::kFaultPlan)) << r.Summary();

  // Zero burst count.
  p = FaultedSeed(spec);
  p.ops[FaultOpIndex(p, spec)].data = {0, 0, 0, 0};
  r = spec::Verify(p, spec);
  EXPECT_TRUE(r.Has(spec::Rule::kFaultPlan)) << r.Summary();

  // Oversized burst count.
  p = FaultedSeed(spec);
  p.ops[FaultOpIndex(p, spec)].data = {0, static_cast<uint8_t>(kMaxFaultBurst + 1), 0, 0};
  r = spec::Verify(p, spec);
  EXPECT_TRUE(r.Has(spec::Rule::kFaultPlan)) << r.Summary();

  // Wrong payload width is the scalar-width rule's business, not kFaultPlan.
  p = FaultedSeed(spec);
  p.ops[FaultOpIndex(p, spec)].data = {0, 1};
  r = spec::Verify(p, spec);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(spec::Rule::kScalarDataWidth)) << r.Summary();
  EXPECT_FALSE(r.Has(spec::Rule::kFaultPlan)) << r.Summary();
}

TEST(FaultInjectionTest, RepairSanitizesFaultPayloads) {
  const Spec spec = Spec::GenericNetwork();
  const Bytes corrupt[] = {
      {99, 1, 0, 0},                                        // unknown kind
      {0, 0, 0, 0},                                         // zero burst
      {3, static_cast<uint8_t>(kMaxFaultBurst + 7), 9, 9},  // oversize burst
      {1},                                                  // short payload
      {},                                                   // empty payload
  };
  for (const Bytes& data : corrupt) {
    Program p = FaultedSeed(spec);
    p.ops[FaultOpIndex(p, spec)].data = data;
    p.Repair(spec);
    const spec::Result r = spec::Verify(p, spec);
    EXPECT_TRUE(r.ok()) << r.Summary();
    EXPECT_TRUE(FaultPlan::Decode(p.ops[FaultOpIndex(p, spec)].data).has_value());
  }
}

TEST(FaultInjectionTest, MutatorNeverInsertsFaultOpsWhenDisabled) {
  auto reg = FindTarget("lightftp");
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();
  const std::vector<Program> seeds = reg->make_seeds(spec);
  ASSERT_FALSE(seeds.empty());
  Mutator mutator(spec, /*seed=*/7, /*dictionary=*/true, /*faults=*/false);
  for (int i = 0; i < 300; i++) {
    Program p = seeds[static_cast<size_t>(i) % seeds.size()];
    mutator.Mutate(p, {}, 0);
    EXPECT_EQ(CountFaultOps(p, spec), 0u) << "iteration " << i;
  }
}

TEST(FaultInjectionTest, MutatorInsertsValidFaultOpsWhenEnabled) {
  auto reg = FindTarget("lightftp");
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();
  const std::vector<Program> seeds = reg->make_seeds(spec);
  ASSERT_FALSE(seeds.empty());
  Mutator mutator(spec, /*seed=*/7, /*dictionary=*/true, /*faults=*/true);
  size_t with_faults = 0;
  // 1500 programs: the per-program fault-carrying probability is only a few
  // percent (most steps are havoc; inserts race deletes), so a small sample
  // turns this into an RNG-stream lottery. At this size the expected count
  // is ~60 and the threshold is a >4-sigma floor, robust to stream shifts
  // from unrelated mutator changes.
  for (int i = 0; i < 1500; i++) {
    Program p = seeds[static_cast<size_t>(i) % seeds.size()];
    mutator.Mutate(p, {}, 0);
    const spec::Result r = spec::Verify(p, spec);
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.Summary();
    if (CountFaultOps(p, spec) > 0) {
      with_faults++;
    }
  }
  EXPECT_GT(with_faults, 25u);
}

CampaignLimits FaultedLimits() {
  CampaignLimits limits;
  limits.vtime_seconds = 5.0;
  limits.max_execs = 150;
  limits.wall_seconds = 120.0;
  return limits;
}

CampaignResult RunFaultedCampaign(const EngineConfig& ecfg) {
  auto reg = FindTarget("lightftp");
  EXPECT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  fcfg.seed = 5;
  fcfg.fault_injection = true;
  NyxFuzzer fuzzer(ecfg, reg->factory, spec, fcfg);
  for (const Program& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  // One extra seed that already carries a fault op, so the campaign
  // exercises fault replay from exec #1 rather than waiting on the mutator.
  fuzzer.AddSeed(FaultedSeed(spec));
  return fuzzer.Run(FaultedLimits());
}

TEST(FaultInjectionTest, FaultedCampaignIsRepeatIdentical) {
  EngineConfig ecfg;
  ecfg.vm.mem_pages = 256;
  ecfg.vm.disk_sectors = 256;
  const CampaignResult a = RunFaultedCampaign(ecfg);
  const CampaignResult b = RunFaultedCampaign(ecfg);

  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.branch_coverage, b.branch_coverage);
  EXPECT_EQ(a.edge_coverage, b.edge_coverage);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faulted_bytes, b.faulted_bytes);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_DOUBLE_EQ(a.vtime_seconds, b.vtime_seconds);
}

TEST(FaultInjectionTest, AuditedFaultedCampaignStaysDivergenceFree) {
  // The acceptance bar for fault snapshotting: an audited campaign with
  // incremental snapshots (depth >= 1) and fault injection on replays
  // bit-identically — fault queues and reset flags really do restore.
  EngineConfig ecfg;
  ecfg.vm.mem_pages = 256;
  ecfg.vm.disk_sectors = 256;
  ecfg.vm.snapshot_depth = 2;
  ecfg.audit = true;
  const CampaignResult result = RunFaultedCampaign(ecfg);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(result.incremental_creates, 0u);
  EXPECT_GT(result.pages_audited, 0u);
  EXPECT_EQ(result.audit_divergences, 0u);
}

}  // namespace
}  // namespace nyx
