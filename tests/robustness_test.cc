// Robustness: hammering every target with adversarial garbage must never
// produce a wild memory access (kCrashWildSegv). Seeded bugs may fire —
// that is what they are for — but the implementations themselves have to be
// memory-safe, exactly like the paper's real targets running under a real
// MMU. The GuardedStep fault fence turns any violation into a visible crash
// id instead of killing the test runner.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fuzz/engine.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

class TargetRobustnessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TargetRobustnessTest, GarbagePacketsNeverEscapeGuestMemory) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  Spec spec = reg->make_spec();
  EngineConfig cfg;
  cfg.vm.mem_pages = 512;
  cfg.vm.disk_sectors = 128;
  NyxEngine engine(cfg, reg->factory, spec);
  engine.Boot();
  Rng rng(0xd15ea5e);
  const std::vector<Program> seeds = reg->make_seeds(spec);

  for (int trial = 0; trial < 40; trial++) {
    Builder b(spec);
    ValueRef con = b.Connection();
    const uint64_t packets = 1 + rng.Below(6);
    for (uint64_t p = 0; p < packets; p++) {
      Bytes data;
      const uint64_t len = rng.Below(700);
      // Mix pure garbage with protocol-shaped prefixes to reach deeper code.
      if (rng.Chance(1, 3) && !seeds.empty()) {
        const Program& seed = seeds[0];
        const auto idx = seed.PacketOpIndices(spec);
        if (!idx.empty()) {
          data = seed.ops[idx[rng.Below(idx.size())]].data;
        }
      }
      for (uint64_t i = 0; i < len; i++) {
        data.push_back(rng.NextByte());
      }
      b.Packet(con, std::move(data));
    }
    auto prog = b.Build();
    ASSERT_TRUE(prog.has_value());
    CoverageMap cov;
    ExecResult r = engine.Run(*prog, cov);
    ASSERT_NE(r.crash.crash_id, kCrashWildSegv)
        << GetParam() << " wild access on trial " << trial;
  }
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const auto& t : AllTargets()) {
    names.push_back(t.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, TargetRobustnessTest, ::testing::ValuesIn(AllNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(FaultGuardTest, WildStepBecomesCrash) {
  // A synthetic target that walks off guest memory: the guard must convert
  // the fault into kCrashWildSegv rather than dying.
  class WildTarget final : public Target {
   public:
    TargetInfo info() const override {
      TargetInfo ti;
      ti.name = "wild";
      ti.transport = SockKind::kDgram;
      ti.port = 1;
      return ti;
    }
    void Init(GuestContext& ctx) override {
      int fd = ctx.net().Socket(SockKind::kDgram);
      ctx.net().Bind(fd, 1);
      auto* st = ctx.State<int>();
      *st = fd;
    }
    void Step(GuestContext& ctx) override {
      uint8_t buf[8];
      if (ctx.net().Recv(*ctx.State<int>(), buf, sizeof(buf)) <= 0) {
        return;
      }
      // Read far past the end of guest memory.
      volatile uint8_t sink = 0;
      const uint8_t* end = ctx.mem().base() + ctx.mem().size_bytes();
      for (size_t i = 0; i < 1 << 20; i++) {
        sink += end[i];
      }
      (void)sink;
    }
  };

  Spec spec = Spec::GenericNetwork();
  EngineConfig cfg;
  cfg.vm.mem_pages = 64;
  NyxEngine engine(cfg, [] { return std::unique_ptr<Target>(new WildTarget()); }, spec);
  engine.Boot();
  Builder b(spec);
  b.Packet(b.Connection(), "go");
  CoverageMap cov;
  ExecResult r = engine.Run(*b.Build(), cov);
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashWildSegv);
  EXPECT_EQ(r.crash.kind, "segv-wild-access");

  // And the engine survives to run the next input cleanly.
  Builder b2(spec);
  b2.Connection();
  ExecResult r2 = engine.Run(*b2.Build(), cov);
  EXPECT_FALSE(r2.crash.crashed);
}

}  // namespace
}  // namespace nyx
