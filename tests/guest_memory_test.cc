// Tests for GuestMemory: real mprotect-based write tracking via SIGSEGV,
// software-mode tracking, arming/disarming and fault-path correctness.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/common/rng.h"
#include "src/vm/guest_memory.h"

namespace nyx {
namespace {

TEST(GuestMemoryMprotectTest, WritesAreTrackedPerPage) {
  GuestMemory mem(16);
  mem.ArmTracking();
  mem.base()[0] = 1;                     // page 0
  mem.base()[3 * kPageSize + 100] = 2;   // page 3
  mem.base()[3 * kPageSize + 200] = 3;   // page 3 again (no new fault)
  EXPECT_EQ(mem.tracker().stack_size(), 2u);
  EXPECT_TRUE(mem.tracker().IsDirty(0));
  EXPECT_TRUE(mem.tracker().IsDirty(3));
  EXPECT_FALSE(mem.tracker().IsDirty(1));
  EXPECT_EQ(mem.base()[0], 1);
  EXPECT_EQ(mem.base()[3 * kPageSize + 100], 2);
}

TEST(GuestMemoryMprotectTest, ReadsDoNotDirty) {
  GuestMemory mem(4);
  mem.base()[kPageSize] = 7;
  mem.ArmTracking();
  volatile uint8_t v = mem.base()[kPageSize];
  EXPECT_EQ(v, 7);
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
}

TEST(GuestMemoryMprotectTest, DisarmStopsTracking) {
  GuestMemory mem(4);
  mem.ArmTracking();
  mem.DisarmTracking();
  mem.base()[0] = 1;
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
}

TEST(GuestMemoryMprotectTest, ReArmDirtyPagesResetsOnlyDirty) {
  GuestMemory mem(8);
  mem.ArmTracking();
  mem.base()[2 * kPageSize] = 1;
  mem.base()[5 * kPageSize] = 1;
  EXPECT_EQ(mem.tracker().stack_size(), 2u);
  mem.ReArmDirtyPages();
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
  // Writing the same pages faults again (they were re-protected).
  mem.base()[2 * kPageSize] = 2;
  EXPECT_TRUE(mem.tracker().IsDirty(2));
  EXPECT_EQ(mem.tracker().stack_size(), 1u);
}

TEST(GuestMemoryMprotectTest, ConsecutivePagesCoalesceProtectCalls) {
  GuestMemory mem(64);
  mem.ArmTracking();
  const uint64_t before = mem.protect_calls();
  // Dirty pages 10..19 in order: one fault-driven mprotect each...
  for (uint32_t p = 10; p < 20; p++) {
    mem.base()[static_cast<size_t>(p) * kPageSize] = 1;
  }
  EXPECT_EQ(mem.protect_calls() - before, 10u);
  // ...but the re-arm coalesces the run into a single call.
  const uint64_t before_rearm = mem.protect_calls();
  mem.ReArmDirtyPages();
  EXPECT_EQ(mem.protect_calls() - before_rearm, 1u);
}

TEST(GuestMemoryMprotectTest, MultipleRegionsCoexist) {
  GuestMemory a(4);
  GuestMemory b(4);
  a.ArmTracking();
  b.ArmTracking();
  a.base()[0] = 1;
  b.base()[kPageSize] = 2;
  EXPECT_TRUE(a.tracker().IsDirty(0));
  EXPECT_FALSE(a.tracker().IsDirty(1));
  EXPECT_TRUE(b.tracker().IsDirty(1));
  EXPECT_FALSE(b.tracker().IsDirty(0));
}

TEST(GuestMemorySoftwareTest, ExplicitWritesTracked) {
  GuestMemory mem(8, TrackingMode::kSoftware);
  mem.ArmTracking();
  const uint32_t value = 0x12345678;
  mem.Write(2 * kPageSize - 2, &value, sizeof(value));  // straddles pages 1-2
  EXPECT_TRUE(mem.tracker().IsDirty(1));
  EXPECT_TRUE(mem.tracker().IsDirty(2));
  uint32_t out = 0;
  mem.Read(2 * kPageSize - 2, &out, sizeof(out));
  EXPECT_EQ(out, value);
}

TEST(GuestMemorySoftwareTest, MemsetTracked) {
  GuestMemory mem(8, TrackingMode::kSoftware);
  mem.ArmTracking();
  mem.Memset(0, 0xaa, 2 * kPageSize + 1);
  EXPECT_TRUE(mem.tracker().IsDirty(0));
  EXPECT_TRUE(mem.tracker().IsDirty(1));
  EXPECT_TRUE(mem.tracker().IsDirty(2));
  EXPECT_FALSE(mem.tracker().IsDirty(3));
  EXPECT_EQ(mem.base()[2 * kPageSize], 0xaa);
}

TEST(GuestMemorySoftwareTest, UnarmedWritesNotTracked) {
  GuestMemory mem(4, TrackingMode::kSoftware);
  uint8_t v = 1;
  mem.Write(0, &v, 1);
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
}

TEST(GuestMemoryMprotectTest, TypedAccess) {
  GuestMemory mem(4);
  mem.ArmTracking();
  struct Thing {
    int a;
    int b;
  };
  auto* t = mem.At<Thing>(256);
  t->a = 42;
  t->b = 43;
  EXPECT_TRUE(mem.tracker().IsDirty(0));
  EXPECT_EQ(mem.At<Thing>(256)->a, 42);
}

// Property: a random write workload produces exactly the dirty set of pages
// actually written.
class GuestMemoryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuestMemoryPropertyTest, DirtySetMatchesWrites) {
  Rng rng(GetParam());
  GuestMemory mem(128);
  mem.ArmTracking();
  std::set<uint32_t> expected;
  for (int i = 0; i < 300; i++) {
    const uint64_t off = rng.Below(mem.size_bytes());
    mem.base()[off] = rng.NextByte();
    expected.insert(PageOf(off));
  }
  std::set<uint32_t> actual(mem.tracker().stack_data(),
                            mem.tracker().stack_data() + mem.tracker().stack_size());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestMemoryPropertyTest, ::testing::Values(1, 2, 3, 9001));

}  // namespace
}  // namespace nyx
