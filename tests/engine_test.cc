// Integration tests for the Nyx execution engine against a real target
// (lightftp): root snapshot auto-placement, per-execution isolation,
// incremental snapshot reuse, determinism and crash plumbing.

#include <gtest/gtest.h>

#include "src/fuzz/engine.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

EngineConfig SmallEngineConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  cfg.vm.disk_sectors = 256;
  return cfg;
}

Program FtpSession(const Spec& spec, const std::vector<std::string>& lines) {
  Builder b(spec);
  ValueRef con = b.Connection();
  for (const std::string& l : lines) {
    b.Packet(con, l + "\r\n");
  }
  return *b.Build();
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : spec_(Spec::GenericNetwork()), engine_(SmallEngineConfig(), MakeLightFtp, spec_) {
    engine_.Boot();
  }

  Spec spec_;
  NyxEngine engine_;
  CoverageMap cov_;
};

TEST_F(EngineTest, BootBlocksOnInput) {
  // After boot the target is parked on accept(): the root snapshot is placed
  // before the first byte of input.
  EXPECT_TRUE(engine_.net().blocked_on_input());
  EXPECT_TRUE(engine_.vm().has_root());
  EXPECT_FALSE(engine_.net().consumed_input());
}

TEST_F(EngineTest, RunsSessionAndCollectsResponses) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x", "PWD"});
  ExecResult r = engine_.Run(p, cov_);
  EXPECT_FALSE(r.crash.crashed);
  EXPECT_EQ(r.packets_delivered, 3u);
  auto responses = engine_.LastResponses();
  ASSERT_GE(responses.size(), 4u);  // banner + 3 replies
  EXPECT_EQ(ToString(responses[0]), "220 LightFTP server ready\r\n");
  EXPECT_EQ(ToString(responses[1]).substr(0, 3), "331");
  EXPECT_EQ(ToString(responses[2]).substr(0, 3), "230");
  EXPECT_EQ(ToString(responses[3]).substr(0, 4), "257 ");
}

TEST_F(EngineTest, ExecutionsAreIsolated) {
  // A STOR in one execution must not be visible in the next one — the
  // snapshot reset rolls back memory AND the emulated disk.
  Program store = FtpSession(spec_, {"USER anonymous", "PASS x", "STOR f.txt", "SIZE f.txt"});
  ExecResult r1 = engine_.Run(store, cov_);
  EXPECT_FALSE(r1.crash.crashed);
  auto resp1 = engine_.LastResponses();
  ASSERT_GE(resp1.size(), 5u);
  EXPECT_EQ(ToString(resp1[4]).substr(0, 3), "213");  // SIZE succeeds

  Program probe = FtpSession(spec_, {"USER anonymous", "PASS x", "SIZE f.txt"});
  engine_.Run(probe, cov_);
  auto resp2 = engine_.LastResponses();
  ASSERT_GE(resp2.size(), 4u);
  EXPECT_EQ(ToString(resp2[3]).substr(0, 3), "550");  // file gone
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x", "STOR a", "LIST", "QUIT"});
  CoverageMap cov_a;
  CoverageMap cov_b;
  // Warm up once: the first execution after boot restores a snapshot with no
  // dirty pages, so its reset is cheaper than steady state.
  CoverageMap warmup;
  engine_.Run(p, warmup);
  ExecResult a = engine_.Run(p, cov_a);
  ExecResult b = engine_.Run(p, cov_b);
  EXPECT_EQ(a.crash.crashed, b.crash.crashed);
  EXPECT_EQ(cov_a.map(), cov_b.map());
  EXPECT_EQ(a.vtime_ns, b.vtime_ns);
}

TEST_F(EngineTest, IncrementalSnapshotReuseSkipsPrefix) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x", "CWD /tmp", "PWD", "NOOP"});
  p.InsertSnapshotAfterPacket(spec_, 2);  // snapshot after CWD

  ExecResult first = engine_.Run(p, cov_);
  EXPECT_TRUE(first.created_incremental);
  EXPECT_FALSE(first.used_incremental);

  // Same prefix, different suffix: must reuse the incremental snapshot and
  // produce the state established by the prefix (logged in, cwd set).
  Program p2 = FtpSession(spec_, {"USER anonymous", "PASS x", "CWD /tmp", "PWD", "SYST"});
  p2.InsertSnapshotAfterPacket(spec_, 2);
  ExecResult second = engine_.Run(p2, cov_);
  EXPECT_TRUE(second.used_incremental);
  EXPECT_FALSE(second.created_incremental);
  auto responses = engine_.LastResponses();
  bool saw_pwd_tmp = false;
  for (const Bytes& r : responses) {
    if (ToString(r).find("\"/tmp\"") != std::string::npos) {
      saw_pwd_tmp = true;
    }
  }
  EXPECT_TRUE(saw_pwd_tmp);
  EXPECT_EQ(engine_.vm_stats().incremental_restores, 1u);
}

TEST_F(EngineTest, IncrementalReuseIsFasterThanFullRun) {
  std::vector<std::string> lines = {"USER anonymous", "PASS x"};
  for (int i = 0; i < 20; i++) {
    lines.push_back("NOOP");
  }
  lines.push_back("PWD");
  Program p = FtpSession(spec_, lines);
  p.InsertSnapshotAfterPacket(spec_, lines.size() - 2);

  ExecResult create = engine_.Run(p, cov_);
  ASSERT_TRUE(create.created_incremental);
  ExecResult reuse = engine_.Run(p, cov_);
  ASSERT_TRUE(reuse.used_incremental);
  // The reuse run skips 22 packets of work.
  EXPECT_LT(reuse.vtime_ns, create.vtime_ns / 3);
}

TEST_F(EngineTest, DifferentPrefixInvalidatesIncremental) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x", "NOOP", "NOOP", "PWD"});
  p.InsertSnapshotAfterPacket(spec_, 3);
  engine_.Run(p, cov_);

  Program q = FtpSession(spec_, {"USER other", "PASS x", "NOOP", "NOOP", "PWD"});
  q.InsertSnapshotAfterPacket(spec_, 3);
  ExecResult r = engine_.Run(q, cov_);
  EXPECT_FALSE(r.used_incremental);     // prefix hash differs
  EXPECT_TRUE(r.created_incremental);   // new snapshot for the new prefix
}

TEST_F(EngineTest, DropIncrementalForcesRootPath) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x", "NOOP", "NOOP", "PWD"});
  p.InsertSnapshotAfterPacket(spec_, 3);
  engine_.Run(p, cov_);
  engine_.DropIncremental();
  ExecResult r = engine_.Run(p, cov_);
  EXPECT_FALSE(r.used_incremental);
}

TEST_F(EngineTest, SnapshotMarkerOnSeedWithoutPackets) {
  Builder b(spec_);
  b.Connection();
  Program p = *b.Build();
  p.InsertSnapshotAfterPacket(spec_, 0);  // no packets: no-op
  ExecResult r = engine_.Run(p, cov_);
  EXPECT_FALSE(r.created_incremental);
  EXPECT_FALSE(r.crash.crashed);
}

TEST_F(EngineTest, ConnectionlessInputRunsCleanly) {
  Program empty;
  ExecResult r = engine_.Run(empty, cov_);
  EXPECT_FALSE(r.crash.crashed);
  EXPECT_EQ(r.packets_delivered, 0u);
}

TEST_F(EngineTest, VirtualTimeChargedPerExecution) {
  Program p = FtpSession(spec_, {"USER anonymous", "PASS x"});
  ExecResult r = engine_.Run(p, cov_);
  // At least the snapshot-restore fixed cost must be charged.
  EXPECT_GE(r.vtime_ns, SmallEngineConfig().cost.snapshot_restore_fixed_ns);
}

}  // namespace
}  // namespace nyx
