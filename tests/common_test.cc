// Tests for src/common: RNG determinism and distribution, virtual clock,
// byte helpers, hashing and the statistics used by the evaluation harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/vclock.h"

namespace nyx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) {
      equal++;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; i++) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; i++) {
    counts[rng.Below(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

TEST(RngTest, ProbabilityMatchesExpectation) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; i++) {
    if (rng.Probability(0.25)) {
      hits++;
    }
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(VClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_ns(), 150u);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 150e-9);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(BytesTest, RoundTripScalars) {
  Bytes b;
  PutLe16(b, 0x1234);
  PutLe32(b, 0xdeadbeef);
  PutBe16(b, 0x5678);
  PutBe32(b, 0xcafebabe);
  EXPECT_EQ(ReadLe16(b, 0), 0x1234);
  EXPECT_EQ(ReadLe32(b, 2), 0xdeadbeefu);
  EXPECT_EQ(ReadBe16(b, 6), 0x5678);
  EXPECT_EQ(ReadBe32(b, 8), 0xcafebabeu);
}

TEST(BytesTest, OutOfRangeReadsReturnZero) {
  Bytes b = {1, 2};
  EXPECT_EQ(ReadLe32(b, 0), 0u);
  EXPECT_EQ(ReadBe16(b, 1), 0u);
  EXPECT_EQ(ReadLe16(b, 2), 0u);
}

TEST(BytesTest, StringConversions) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(ToString(b), "hello");
  EXPECT_EQ(AsStringView(b), "hello");
}

TEST(BytesTest, StartsWithNoCase) {
  EXPECT_TRUE(StartsWithNoCase("USER anonymous", "user"));
  EXPECT_TRUE(StartsWithNoCase("user anonymous", "USER"));
  EXPECT_FALSE(StartsWithNoCase("USE", "USER"));
  EXPECT_FALSE(StartsWithNoCase("PASS x", "USER"));
}

TEST(HashTest, Fnv1aStableAndSensitive) {
  Bytes a = ToBytes("abc");
  Bytes b = ToBytes("abd");
  EXPECT_EQ(Fnv1a64(a), Fnv1a64(a));
  EXPECT_NE(Fnv1a64(a), Fnv1a64(b));
}

TEST(StatsTest, MeanMedianStdDev) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_NEAR(StdDev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
}

TEST(StatsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, MannWhitneyDetectsClearDifference) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> b = {101, 102, 103, 104, 105, 106, 107, 108, 109, 110};
  EXPECT_LT(MannWhitneyUPValue(a, b), 0.05);
}

TEST(StatsTest, MannWhitneyIdenticalSamplesNotSignificant) {
  std::vector<double> a = {5, 5, 5, 5, 5, 5, 5, 5, 5, 5};
  EXPECT_GE(MannWhitneyUPValue(a, a), 0.05);
}

TEST(StatsTest, MannWhitneyOverlappingNotSignificant) {
  std::vector<double> a = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  std::vector<double> b = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  EXPECT_GE(MannWhitneyUPValue(a, b), 0.05);
}

TEST(TimeSeriesTest, ValueAtStepwise) {
  TimeSeries ts;
  ts.Record(10, 100);
  ts.Record(20, 200);
  EXPECT_DOUBLE_EQ(ts.ValueAt(5), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(10), 100.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(15), 100.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(25), 200.0);
}

TEST(TimeSeriesTest, TimeToReach) {
  TimeSeries ts;
  ts.Record(10, 100);
  ts.Record(20, 200);
  EXPECT_DOUBLE_EQ(ts.TimeToReach(50), 10.0);
  EXPECT_DOUBLE_EQ(ts.TimeToReach(150), 20.0);
  EXPECT_LT(ts.TimeToReach(500), 0.0);
}

TEST(TimeSeriesTest, PointwiseMedian) {
  TimeSeries a;
  a.Record(0, 0);
  a.Record(10, 10);
  TimeSeries b;
  b.Record(0, 0);
  b.Record(10, 30);
  TimeSeries c;
  c.Record(0, 0);
  c.Record(10, 20);
  TimeSeries med = TimeSeries::PointwiseMedian({a, b, c}, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(med.ValueAt(10), 20.0);
}

TEST(TimeSeriesTest, CsvExport) {
  TimeSeries ts;
  ts.Record(1, 2);
  EXPECT_EQ(ts.ToCsv("x"), "x,1,2\n");
}

// Dense grid cross-check of the binary-search lookups: every query between,
// at, before and after the sample points must agree with a brute-force scan.
TEST(TimeSeriesTest, DenseGridMatchesBruteForce) {
  TimeSeries ts;
  std::vector<std::pair<double, double>> pts;
  // Non-monotone values (dips at every 7th sample) exercise the cummax path
  // of TimeToReach.
  for (int i = 0; i < 500; i++) {
    const double t = 0.25 * i;
    const double v = (i % 7 == 0) ? i / 2.0 : static_cast<double>(i);
    ts.Record(t, v);
    pts.emplace_back(t, v);
  }
  // ValueAt: step function, last sample at or before t.
  for (double t = -1.0; t < 130.0; t += 0.1) {
    double expect = 0.0;
    for (const auto& [pt, pv] : pts) {
      if (pt <= t) {
        expect = pv;
      } else {
        break;
      }
    }
    ASSERT_DOUBLE_EQ(ts.ValueAt(t), expect) << "t=" << t;
  }
  // TimeToReach: first time the running max reaches the threshold.
  for (double v = 0.0; v < 520.0; v += 1.7) {
    double expect = -1.0;
    double running_max = -1.0;
    for (const auto& [pt, pv] : pts) {
      running_max = std::max(running_max, pv);
      if (running_max >= v) {
        expect = pt;
        break;
      }
    }
    const double got = ts.TimeToReach(v);
    if (expect < 0) {
      ASSERT_LT(got, 0.0) << "v=" << v;
    } else {
      ASSERT_DOUBLE_EQ(got, expect) << "v=" << v;
    }
  }
}

}  // namespace
}  // namespace nyx
