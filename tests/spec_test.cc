// Tests for the specification engine: spec construction, bytecode
// serialization round trips, affine validation, repair, snapshot markers and
// the seed builder.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/spec/builder.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {
namespace {

TEST(SpecTest, GenericNetworkShape) {
  Spec s = Spec::GenericNetwork();
  EXPECT_EQ(s.edge_type_count(), 1u);
  EXPECT_EQ(s.node_type_count(), 3u);
  ASSERT_TRUE(s.FindNodeType("connection").has_value());
  ASSERT_TRUE(s.FindNodeType("pkt").has_value());
  EXPECT_FALSE(s.FindNodeType("close").has_value());
  EXPECT_EQ(s.NodesWithSemantic(NodeSemantic::kPacket).size(), 1u);
}

TEST(SpecTest, FaultNodeShape) {
  for (const Spec& s : {Spec::GenericNetwork(), Spec::MultiConnection()}) {
    ASSERT_TRUE(s.FindNodeType("fault").has_value());
    const NodeTypeDef& fault = s.node_type(*s.FindNodeType("fault"));
    EXPECT_EQ(fault.semantic, NodeSemantic::kFault);
    // Borrows (not consumes) the connection: a faulted connection can still
    // carry later packet/close ops.
    EXPECT_EQ(fault.borrows.size(), 1u);
    EXPECT_TRUE(fault.consumes.empty());
    EXPECT_TRUE(fault.outputs.empty());
    EXPECT_EQ(fault.data, DataKind::kU32);
  }
}

TEST(SpecTest, MultiConnectionHasClose) {
  Spec s = Spec::MultiConnection();
  ASSERT_TRUE(s.FindNodeType("close").has_value());
  const NodeTypeDef& close = s.node_type(*s.FindNodeType("close"));
  EXPECT_EQ(close.consumes.size(), 1u);
  EXPECT_EQ(close.semantic, NodeSemantic::kClose);
}

Program MakeSeed(const Spec& spec, int packets) {
  Builder b(spec);
  ValueRef con = b.Connection();
  for (int i = 0; i < packets; i++) {
    b.Packet(con, "packet-" + std::to_string(i));
  }
  auto prog = b.Build();
  EXPECT_TRUE(prog.has_value());
  return *prog;
}

TEST(BuilderTest, RecordsCallsInOrder) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 3);
  ASSERT_EQ(p.ops.size(), 4u);
  EXPECT_EQ(spec.node_type(p.ops[0].node_type).semantic, NodeSemantic::kConnection);
  EXPECT_EQ(ToString(p.ops[2].data), "packet-1");
  EXPECT_TRUE(p.Validate(spec));
}

TEST(BuilderTest, UnknownNodeFailsBuild) {
  Spec spec = Spec::GenericNetwork();
  Builder b(spec);
  EXPECT_FALSE(b.Node("no-such-node").has_value());
  EXPECT_FALSE(b.Build().has_value());
  EXPECT_FALSE(b.error().empty());
}

TEST(BuilderTest, ArityMismatchFailsBuild) {
  Spec spec = Spec::GenericNetwork();
  Builder b(spec);
  EXPECT_FALSE(b.Node("pkt", {}, ToBytes("x")).has_value());  // missing conn
  EXPECT_FALSE(b.Build().has_value());
}

TEST(BuilderTest, MultiConnectionSeed) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef c1 = b.Connection();
  ValueRef c2 = b.Connection();
  b.Packet(c1, "to-first");
  b.Packet(c2, "to-second");
  b.Close(c1);
  auto prog = b.Build();
  ASSERT_TRUE(prog.has_value());
  EXPECT_TRUE(prog->Validate(spec));
  EXPECT_EQ(prog->ops.size(), 5u);
}

TEST(ProgramTest, SerializeParseRoundTrip) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 5);
  Bytes wire = p.Serialize();
  auto parsed = Program::Parse(wire, spec);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->ops.size(), p.ops.size());
  for (size_t i = 0; i < p.ops.size(); i++) {
    EXPECT_EQ(parsed->ops[i].node_type, p.ops[i].node_type);
    EXPECT_EQ(parsed->ops[i].args, p.ops[i].args);
    EXPECT_EQ(parsed->ops[i].data, p.ops[i].data);
  }
}

TEST(ProgramTest, SnapshotMarkerSurvivesRoundTrip) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 4);
  p.InsertSnapshotAfterPacket(spec, 1);
  ASSERT_TRUE(p.SnapshotMarkerPos().has_value());
  Bytes wire = p.Serialize();
  auto parsed = Program::Parse(wire, spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->SnapshotMarkerPos(), p.SnapshotMarkerPos());
}

TEST(ProgramTest, ParseRejectsMalformed) {
  Spec spec = Spec::GenericNetwork();
  EXPECT_FALSE(Program::Parse({}, spec).has_value());
  EXPECT_FALSE(Program::Parse(ToBytes("garbage input here"), spec).has_value());
  Program p = MakeSeed(spec, 2);
  Bytes wire = p.Serialize();
  // Truncation at every boundary must fail cleanly, never crash.
  for (size_t cut = 0; cut < wire.size(); cut++) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Program::Parse(truncated, spec).has_value()) << "cut=" << cut;
  }
  // Trailing garbage is also rejected.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(Program::Parse(extended, spec).has_value());
}

TEST(ProgramTest, ParseRejectsUnknownNodeType) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 1);
  Bytes wire = p.Serialize();
  wire[7] = 0x77;  // first op's node id
  EXPECT_FALSE(Program::Parse(wire, spec).has_value());
}

TEST(ProgramTest, ValidateCatchesAffineViolations) {
  Spec spec = Spec::MultiConnection();
  const uint8_t pkt = static_cast<uint8_t>(*spec.FindNodeType("pkt"));
  const uint8_t con = static_cast<uint8_t>(*spec.FindNodeType("connection"));
  const uint8_t close = static_cast<uint8_t>(*spec.FindNodeType("close"));

  // Borrow before production.
  Program bad1;
  bad1.ops.push_back(Op{pkt, {0}, ToBytes("x")});
  EXPECT_FALSE(bad1.Validate(spec));

  // Use after consume.
  Program bad2;
  bad2.ops.push_back(Op{con, {}, {}});
  bad2.ops.push_back(Op{close, {0}, {}});
  bad2.ops.push_back(Op{pkt, {0}, ToBytes("x")});
  std::string err;
  EXPECT_FALSE(bad2.Validate(spec, &err));
  EXPECT_NE(err.find("borrows"), std::string::npos);

  // Double close.
  Program bad3;
  bad3.ops.push_back(Op{con, {}, {}});
  bad3.ops.push_back(Op{close, {0}, {}});
  bad3.ops.push_back(Op{close, {0}, {}});
  EXPECT_FALSE(bad3.Validate(spec));

  // Valid sequence passes.
  Program good;
  good.ops.push_back(Op{con, {}, {}});
  good.ops.push_back(Op{pkt, {0}, ToBytes("x")});
  good.ops.push_back(Op{close, {0}, {}});
  EXPECT_TRUE(good.Validate(spec));
}

TEST(ProgramTest, RepairFixesDanglingRefs) {
  Spec spec = Spec::MultiConnection();
  const uint8_t pkt = static_cast<uint8_t>(*spec.FindNodeType("pkt"));
  const uint8_t con = static_cast<uint8_t>(*spec.FindNodeType("connection"));

  Program p;
  p.ops.push_back(Op{con, {}, {}});
  p.ops.push_back(Op{pkt, {42}, ToBytes("x")});  // dangling ref
  EXPECT_FALSE(p.Validate(spec));
  p.Repair(spec);
  EXPECT_TRUE(p.Validate(spec));
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[1].args[0], 0);  // rewired to the live connection
}

TEST(ProgramTest, RepairDropsOpsWithNoCandidate) {
  Spec spec = Spec::MultiConnection();
  const uint8_t pkt = static_cast<uint8_t>(*spec.FindNodeType("pkt"));
  Program p;
  p.ops.push_back(Op{pkt, {0}, ToBytes("x")});  // no connection exists at all
  p.Repair(spec);
  EXPECT_TRUE(p.ops.empty());
}

TEST(ProgramTest, RepairKeepsOnlyFirstSnapshotMarker) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 2);
  Op marker;
  marker.node_type = kSnapshotOpcode;
  p.ops.insert(p.ops.begin() + 1, marker);
  p.ops.push_back(marker);
  p.Repair(spec);
  EXPECT_TRUE(p.Validate(spec));
  size_t markers = 0;
  for (const Op& op : p.ops) {
    markers += op.is_snapshot() ? 1 : 0;
  }
  EXPECT_EQ(markers, 1u);
}

TEST(ProgramTest, PacketIndicesAndSnapshotInsertion) {
  Spec spec = Spec::GenericNetwork();
  Program p = MakeSeed(spec, 3);
  auto packets = p.PacketOpIndices(spec);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0], 1u);

  p.InsertSnapshotAfterPacket(spec, 0);
  EXPECT_EQ(*p.SnapshotMarkerPos(), 2u);
  // Re-insertion moves the marker (never duplicates it).
  p.InsertSnapshotAfterPacket(spec, 2);
  size_t markers = 0;
  for (const Op& op : p.ops) {
    markers += op.is_snapshot() ? 1 : 0;
  }
  EXPECT_EQ(markers, 1u);
  EXPECT_EQ(*p.SnapshotMarkerPos(), p.ops.size() - 1);

  // Out-of-range packet index clamps to the last packet.
  p.InsertSnapshotAfterPacket(spec, 99);
  EXPECT_EQ(*p.SnapshotMarkerPos(), p.ops.size() - 1);

  p.StripSnapshotMarkers();
  EXPECT_FALSE(p.SnapshotMarkerPos().has_value());
  EXPECT_EQ(p.ops.size(), 4u);
}

TEST(ProgramTest, TotalDataBytes) {
  Spec spec = Spec::GenericNetwork();
  Builder b(spec);
  ValueRef c = b.Connection();
  b.Packet(c, "1234");
  b.Packet(c, "56");
  Program p = *b.Build();
  EXPECT_EQ(p.TotalDataBytes(), 6u);
}

// Property: random valid programs always round trip; random byte blobs never
// crash the parser.
class ProgramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProgramPropertyTest, RandomProgramRoundTrip) {
  Rng rng(GetParam());
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  std::vector<ValueRef> conns;
  conns.push_back(b.Connection());
  for (int i = 0; i < 30; i++) {
    const uint64_t action = rng.Below(10);
    if (action < 2) {
      conns.push_back(b.Connection());
    } else {
      Bytes data;
      const uint64_t len = rng.Below(64);
      for (uint64_t j = 0; j < len; j++) {
        data.push_back(rng.NextByte());
      }
      b.Packet(rng.Choice(conns), std::move(data));
    }
  }
  auto prog = b.Build();
  ASSERT_TRUE(prog.has_value());
  Bytes wire = prog->Serialize();
  auto parsed = Program::Parse(wire, spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Serialize(), wire);
  EXPECT_TRUE(parsed->Validate(spec));
}

TEST_P(ProgramPropertyTest, FuzzedWireNeverCrashes) {
  Rng rng(GetParam() ^ 0xabcdef);
  Spec spec = Spec::GenericNetwork();
  for (int i = 0; i < 200; i++) {
    Bytes junk;
    const uint64_t len = rng.Below(256);
    for (uint64_t j = 0; j < len; j++) {
      junk.push_back(rng.NextByte());
    }
    auto parsed = Program::Parse(junk, spec);  // must not crash or UB
    if (parsed.has_value()) {
      parsed->Repair(spec);
      EXPECT_TRUE(parsed->Validate(spec));
    }
  }
}

TEST_P(ProgramPropertyTest, RepairAlwaysYieldsValid) {
  Rng rng(GetParam() ^ 0x1234);
  Spec spec = Spec::MultiConnection();
  for (int trial = 0; trial < 50; trial++) {
    Program p;
    const uint64_t nops = rng.Range(1, 20);
    for (uint64_t i = 0; i < nops; i++) {
      Op op;
      op.node_type = rng.Chance(1, 10)
                         ? kSnapshotOpcode
                         : static_cast<uint8_t>(rng.Below(spec.node_type_count()));
      if (!op.is_snapshot()) {
        const NodeTypeDef& node = spec.node_type(op.node_type);
        for (size_t a = 0; a < node.borrows.size() + node.consumes.size(); a++) {
          op.args.push_back(static_cast<uint16_t>(rng.Below(30)));
        }
        if (node.data == DataKind::kBytes) {
          op.data.push_back(rng.NextByte());
        }
      }
      p.ops.push_back(std::move(op));
    }
    p.Repair(spec);
    std::string err;
    EXPECT_TRUE(p.Validate(spec, &err)) << err;
  }
}

// Wire-format hardening: start from VALID serialized programs and corrupt
// them — random byte overwrites, single bit flips, truncations, splices.
// Corruptions of valid wire explore much deeper parser states than pure junk
// blobs (magic and version match, so the op loop actually runs). The parser
// must never crash; anything it does accept must re-serialize cleanly and be
// repairable to a Validate-clean program.
TEST_P(ProgramPropertyTest, CorruptedWireNeverCrashes) {
  Rng rng(GetParam() ^ 0x70736575);
  for (const Spec& spec : {Spec::GenericNetwork(), Spec::MultiConnection()}) {
    // A pool of valid wires of varying shapes to corrupt.
    std::vector<Bytes> pool;
    for (int packets : {0, 1, 4, 9}) {
      Program p = MakeSeed(spec, packets);
      if (packets > 1) {
        p.InsertSnapshotAfterPacket(spec, 0);
      }
      pool.push_back(p.Serialize());
    }
    for (int i = 0; i < 10000; i++) {
      Bytes wire = pool[rng.Below(pool.size())];
      const uint64_t mode = rng.Below(4);
      if (mode == 0 && !wire.empty()) {
        // Byte overwrite at a random offset (possibly several).
        const uint64_t edits = rng.Range(1, 4);
        for (uint64_t e = 0; e < edits; e++) {
          wire[rng.Below(wire.size())] = rng.NextByte();
        }
      } else if (mode == 1 && !wire.empty()) {
        // Single bit flip — the classic storage-corruption shape.
        wire[rng.Below(wire.size())] ^= static_cast<uint8_t>(1u << rng.Below(8));
      } else if (mode == 2) {
        // Truncate to a random prefix.
        wire.resize(rng.Below(wire.size() + 1));
      } else {
        // Splice the tail of one wire onto the head of another.
        const Bytes& other = pool[rng.Below(pool.size())];
        wire.resize(rng.Below(wire.size() + 1));
        wire.insert(wire.end(), other.begin() + static_cast<long>(rng.Below(other.size())),
                    other.end());
      }
      auto parsed = Program::Parse(wire, spec);  // must not crash or UB
      if (parsed.has_value()) {
        // Accepted wire must be internally consistent: re-serialization
        // parses again, and Repair reaches a Validate-clean program.
        EXPECT_TRUE(Program::Parse(parsed->Serialize(), spec).has_value());
        parsed->Repair(spec);
        std::string err;
        EXPECT_TRUE(parsed->Validate(spec, &err)) << err;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nyx
