// Tests for the centralized environment accessors (src/common/env.h): the
// typed parsing rules every knob shares, and the both-ways override
// semantics of FlagOr that NYX_LOCK_DEBUG depends on.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/env.h"

namespace nyx {
namespace {

// Scoped setter so a failing assertion cannot leak a knob into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

constexpr char kVar[] = "NYX_ENV_TEST_KNOB";

TEST(EnvTest, FlagSemantics) {
  unsetenv(kVar);
  EXPECT_FALSE(env::Flag(kVar));
  {
    ScopedEnv e(kVar, "");
    EXPECT_FALSE(env::Flag(kVar));  // empty counts as unset
  }
  {
    ScopedEnv e(kVar, "0");
    EXPECT_FALSE(env::Flag(kVar));
  }
  {
    ScopedEnv e(kVar, "1");
    EXPECT_TRUE(env::Flag(kVar));
  }
  {
    ScopedEnv e(kVar, "yes");
    EXPECT_TRUE(env::Flag(kVar));
  }
}

TEST(EnvTest, FlagOrOverridesBothWays) {
  unsetenv(kVar);
  EXPECT_TRUE(env::FlagOr(kVar, true));
  EXPECT_FALSE(env::FlagOr(kVar, false));
  {
    ScopedEnv e(kVar, "0");
    EXPECT_FALSE(env::FlagOr(kVar, true));  // explicit off beats default on
  }
  {
    ScopedEnv e(kVar, "1");
    EXPECT_TRUE(env::FlagOr(kVar, false));  // explicit on beats default off
  }
  {
    ScopedEnv e(kVar, "");
    EXPECT_TRUE(env::FlagOr(kVar, true));  // empty falls back to default
  }
}

TEST(EnvTest, SizeOrParsesPositiveIntegers) {
  unsetenv(kVar);
  EXPECT_EQ(env::SizeOr(kVar, 7), 7u);
  {
    ScopedEnv e(kVar, "42");
    EXPECT_EQ(env::SizeOr(kVar, 7), 42u);
  }
  {
    ScopedEnv e(kVar, "0");  // not positive
    EXPECT_EQ(env::SizeOr(kVar, 7), 7u);
  }
  {
    ScopedEnv e(kVar, "-3");
    EXPECT_EQ(env::SizeOr(kVar, 7), 7u);
  }
  {
    ScopedEnv e(kVar, "banana");
    EXPECT_EQ(env::SizeOr(kVar, 7), 7u);
  }
}

TEST(EnvTest, DoubleOrParsesPositiveDoubles) {
  unsetenv(kVar);
  EXPECT_DOUBLE_EQ(env::DoubleOr(kVar, 1.5), 1.5);
  {
    ScopedEnv e(kVar, "2.25");
    EXPECT_DOUBLE_EQ(env::DoubleOr(kVar, 1.5), 2.25);
  }
  {
    ScopedEnv e(kVar, "0");
    EXPECT_DOUBLE_EQ(env::DoubleOr(kVar, 1.5), 1.5);
  }
  {
    ScopedEnv e(kVar, "nope");
    EXPECT_DOUBLE_EQ(env::DoubleOr(kVar, 1.5), 1.5);
  }
}

TEST(EnvTest, StringOrFallsBackWhenUnsetOrEmpty) {
  unsetenv(kVar);
  EXPECT_EQ(env::StringOr(kVar, "def"), "def");
  {
    ScopedEnv e(kVar, "");
    EXPECT_EQ(env::StringOr(kVar, "def"), "def");
  }
  {
    ScopedEnv e(kVar, "value");
    EXPECT_EQ(env::StringOr(kVar, "def"), "value");
  }
}

TEST(EnvTest, NamedAccessorsReadTheirKnobs) {
  {
    ScopedEnv e("NYX_RUNS", "3");
    EXPECT_EQ(env::Runs(1), 3u);
  }
  EXPECT_EQ(env::Runs(1), 1u);
  {
    ScopedEnv e("NYX_VTIME", "0.5");
    EXPECT_DOUBLE_EQ(env::Vtime(9.0), 0.5);
  }
  {
    ScopedEnv e("NYX_JOBS", "4");
    EXPECT_EQ(env::Jobs(1), 4u);
  }
  {
    ScopedEnv e("NYX_WALL", "12");
    EXPECT_DOUBLE_EQ(env::Wall(5.0), 12.0);
  }
  {
    ScopedEnv e("NYX_LOCK_DEBUG", "0");
    EXPECT_FALSE(env::LockDebug(true));
  }
  {
    ScopedEnv e("NYX_AUDIT", "1");
    EXPECT_TRUE(env::Audit());
  }
  EXPECT_FALSE(env::Audit());
}

}  // namespace
}  // namespace nyx
