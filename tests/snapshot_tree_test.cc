// Tests for the depth-k incremental snapshot tree (src/vm/vm.h): pushes at
// increasing depth, ancestor and forward restores, invalidation rules, aux
// blob routing, disk/device state along the chain, and a shadow-model
// property test. Depth 1 must behave exactly like the classic
// root+incremental pair.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/vm/vm.h"

namespace nyx {
namespace {

VmConfig TreeConfig(size_t depth) {
  VmConfig c;
  c.mem_pages = 64;
  c.disk_sectors = 64;
  c.snapshot_depth = depth;
  return c;
}

uint8_t* PagePtr(Vm& vm, uint32_t page) {
  return vm.mem().base() + static_cast<size_t>(page) * kPageSize;
}

TEST(SnapshotTreeTest, PushGrowsDepthAndRestoreToAncestorKeepsPrefix) {
  Vm vm(TreeConfig(3));
  vm.TakeRootSnapshot();
  PagePtr(vm, 1)[0] = 11;
  EXPECT_EQ(vm.PushSnapshot(), 1u);
  PagePtr(vm, 2)[0] = 22;
  EXPECT_EQ(vm.PushSnapshot(), 2u);
  PagePtr(vm, 3)[0] = 33;
  EXPECT_EQ(vm.PushSnapshot(), 3u);
  EXPECT_EQ(vm.cur_depth(), 3u);
  EXPECT_EQ(vm.max_valid_depth(), 3u);

  PagePtr(vm, 4)[0] = 44;  // dirt on top of depth 3
  vm.RestoreTo(2);
  EXPECT_EQ(vm.cur_depth(), 2u);
  EXPECT_EQ(PagePtr(vm, 1)[0], 11);  // depth-1 delta: shared ancestry, kept
  EXPECT_EQ(PagePtr(vm, 2)[0], 22);  // depth-2 delta: the target state
  EXPECT_EQ(PagePtr(vm, 3)[0], 0);   // depth-3 delta: reverted
  EXPECT_EQ(PagePtr(vm, 4)[0], 0);   // dirt: reverted
  EXPECT_EQ(vm.stats().deep_restores, 1u);
}

TEST(SnapshotTreeTest, AncestorRestoreRevertsOnlyUnsharedSuffix) {
  Vm vm(TreeConfig(3));
  vm.TakeRootSnapshot();
  // Big shared prefix at depth 1, tiny deltas deeper.
  for (uint32_t p = 0; p < 20; p++) {
    PagePtr(vm, p)[0] = 1;
  }
  vm.PushSnapshot();
  PagePtr(vm, 30)[0] = 2;
  vm.PushSnapshot();
  PagePtr(vm, 31)[0] = 3;
  const uint64_t before = vm.stats().pages_restored;
  vm.RestoreTo(1);
  // Only the depth-2 delta (1 page) and the dirt (1 page) move — not the 20
  // shared prefix pages. That is the entire point of the tree.
  EXPECT_EQ(vm.stats().pages_restored - before, 2u);
  for (uint32_t p = 0; p < 20; p++) {
    EXPECT_EQ(PagePtr(vm, p)[0], 1);
  }
  EXPECT_EQ(PagePtr(vm, 30)[0], 0);
  EXPECT_EQ(PagePtr(vm, 31)[0], 0);
}

TEST(SnapshotTreeTest, ForwardRestoreToValidDescendant) {
  Vm vm(TreeConfig(2));
  vm.TakeRootSnapshot();
  PagePtr(vm, 1)[0] = 11;
  vm.disk().WriteBytes(0, "one", 3);
  vm.PushSnapshot();
  PagePtr(vm, 2)[0] = 22;
  vm.disk().WriteBytes(512, "two", 3);
  vm.PushSnapshot();

  vm.RestoreTo(1);
  EXPECT_EQ(PagePtr(vm, 2)[0], 0);
  char buf[4] = {};
  vm.disk().ReadBytes(512, buf, 3);
  EXPECT_EQ(0, memcmp(buf, "\0\0\0", 3));
  EXPECT_EQ(vm.max_valid_depth(), 2u);  // depth 2 still valid: nothing invalidated it

  // Forward again: depth-2 delta reapplied to memory *and* disk.
  vm.RestoreTo(2);
  EXPECT_EQ(PagePtr(vm, 1)[0], 11);
  EXPECT_EQ(PagePtr(vm, 2)[0], 22);
  vm.disk().ReadBytes(512, buf, 3);
  EXPECT_EQ(0, memcmp(buf, "two", 3));
}

TEST(SnapshotTreeTest, PushInvalidatesDeeperSlots) {
  Vm vm(TreeConfig(3));
  vm.TakeRootSnapshot();
  PagePtr(vm, 1)[0] = 1;
  vm.PushSnapshot();
  PagePtr(vm, 2)[0] = 2;
  vm.PushSnapshot();
  PagePtr(vm, 3)[0] = 3;
  vm.PushSnapshot();
  vm.RestoreTo(1);
  ASSERT_EQ(vm.max_valid_depth(), 3u);
  // Recapture at depth 2 from a different state: old depths 2..3 are stale.
  PagePtr(vm, 9)[0] = 9;
  EXPECT_EQ(vm.PushSnapshot(), 2u);
  EXPECT_EQ(vm.max_valid_depth(), 2u);
  // The new depth-2 state must be exact: old deltas from the replaced
  // lineage (pages 2, 3) stay reverted, the recaptured page 9 comes back.
  vm.RestoreTo(2);
  EXPECT_EQ(PagePtr(vm, 1)[0], 1);
  EXPECT_EQ(PagePtr(vm, 9)[0], 9);
  EXPECT_EQ(PagePtr(vm, 2)[0], 0);
  EXPECT_EQ(PagePtr(vm, 3)[0], 0);
}

TEST(SnapshotTreeTest, RootRestoreInvalidatesWholeTree) {
  Vm vm(TreeConfig(2));
  vm.TakeRootSnapshot();
  PagePtr(vm, 1)[0] = 1;
  vm.PushSnapshot();
  PagePtr(vm, 2)[0] = 2;
  vm.PushSnapshot();
  vm.RestoreRoot();
  EXPECT_EQ(vm.max_valid_depth(), 0u);
  EXPECT_FALSE(vm.has_incremental());
  EXPECT_EQ(PagePtr(vm, 1)[0], 0);
  EXPECT_EQ(PagePtr(vm, 2)[0], 0);
}

TEST(SnapshotTreeTest, AuxBlobPerDepth) {
  Vm vm(TreeConfig(2));
  vm.TakeRootSnapshot(ToBytes("root"));
  vm.PushSnapshot(ToBytes("d1"));
  vm.PushSnapshot(ToBytes("d2"));
  EXPECT_EQ(ToString(vm.aux_at(1)), "d1");
  EXPECT_EQ(ToString(vm.aux_at(2)), "d2");
  EXPECT_EQ(ToString(vm.current_aux()), "d2");
  vm.RestoreTo(1);
  EXPECT_EQ(ToString(vm.current_aux()), "d1");
  vm.RestoreTo(2);
  EXPECT_EQ(ToString(vm.current_aux()), "d2");
  vm.RestoreRoot();
  EXPECT_EQ(ToString(vm.current_aux()), "root");
}

TEST(SnapshotTreeTest, DeviceStateFollowsDepth) {
  Vm vm(TreeConfig(2));
  vm.TakeRootSnapshot();
  vm.devices().regs(0)[0] = 0x11;
  vm.PushSnapshot();
  vm.devices().regs(0)[0] = 0x22;
  vm.PushSnapshot();
  vm.devices().regs(0)[0] = 0x33;
  vm.RestoreTo(1);
  EXPECT_EQ(vm.devices().regs(0)[0], 0x11);
  vm.RestoreTo(2);
  EXPECT_EQ(vm.devices().regs(0)[0], 0x22);
  vm.RestoreRoot();
  EXPECT_EQ(vm.devices().regs(0)[0], 0);
}

TEST(SnapshotTreeTest, PushBeyondConfiguredDepthTrapsInDebug) {
  Vm vm(TreeConfig(1));
  vm.TakeRootSnapshot();
  EXPECT_EQ(vm.PushSnapshot(), 1u);
  // Depth 1 is the cap; has_snapshot_at(2) can never become true.
  EXPECT_FALSE(vm.has_snapshot_at(2));
}

// Depth-1 trees must be indistinguishable from the classic root+incremental
// pair: same restore results, same legacy accessors.
TEST(SnapshotTreeTest, DepthOneEquivalentToClassicPair) {
  Vm tree(TreeConfig(1));
  Vm classic(TreeConfig(1));
  tree.TakeRootSnapshot();
  classic.TakeRootSnapshot();

  auto run = [](Vm& vm, bool use_push) {
    PagePtr(vm, 3)[0] = 42;
    vm.disk().WriteBytes(0, "pfx", 3);
    if (use_push) {
      ASSERT_EQ(vm.PushSnapshot(), 1u);
    } else {
      vm.CreateIncremental();
    }
    for (int i = 0; i < 3; i++) {
      PagePtr(vm, 9)[0] = static_cast<uint8_t>(i + 1);
      vm.RestoreIncremental();
    }
  };
  run(tree, true);
  run(classic, false);
  EXPECT_EQ(0, memcmp(tree.mem().base(), classic.mem().base(), tree.mem().size_bytes()));
  EXPECT_TRUE(tree.has_incremental());
  EXPECT_TRUE(classic.has_incremental());
  EXPECT_EQ(tree.stats().incremental_restores, classic.stats().incremental_restores);
  EXPECT_EQ(tree.stats().deep_restores, 0u);

  tree.RestoreRoot();
  classic.RestoreRoot();
  EXPECT_EQ(0, memcmp(tree.mem().base(), classic.mem().base(), tree.mem().size_bytes()));
}

// Shadow-model property: random interleavings of writes, pushes and restores
// against a full-image model of every captured state.
class SnapshotTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotTreePropertyTest, TreeMatchesShadowImages) {
  Rng rng(GetParam());
  constexpr size_t kDepth = 3;
  Vm vm(TreeConfig(kDepth));
  vm.TakeRootSnapshot();
  const size_t bytes = vm.mem().size_bytes();

  // images[d] = full memory image of the state at depth d (0 = root).
  std::vector<Bytes> images(kDepth + 1);
  images[0].resize(bytes);
  memcpy(images[0].data(), vm.mem().base(), bytes);
  size_t valid_depth = 0;  // deepest d with a trusted image

  for (int step = 0; step < 400; step++) {
    const uint64_t action = rng.Below(10);
    if (action < 5) {
      vm.mem().base()[rng.Below(bytes)] = rng.NextByte();
    } else if (action < 7 && vm.cur_depth() < kDepth) {
      const size_t d = vm.PushSnapshot();
      images[d].resize(bytes);
      memcpy(images[d].data(), vm.mem().base(), bytes);
      valid_depth = d;
    } else if (action < 9 && valid_depth > 0) {
      const size_t target = rng.Below(valid_depth + 1);  // 0..valid_depth
      if (target == 0) {
        vm.RestoreRoot();
        valid_depth = 0;
      } else {
        vm.RestoreTo(target);
      }
      ASSERT_EQ(0, memcmp(vm.mem().base(), images[target].data(), bytes))
          << "step " << step << " restore to depth " << target;
    } else {
      vm.RestoreRoot();
      valid_depth = 0;
      ASSERT_EQ(0, memcmp(vm.mem().base(), images[0].data(), bytes)) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotTreePropertyTest,
                         ::testing::Values(1, 2, 3, 7, 1337, 424242));

}  // namespace
}  // namespace nyx
