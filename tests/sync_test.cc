// Tests for the capability-annotated sync layer (src/common/sync.h):
// mutual exclusion, condvar signaling, acquisition/contention stats, the
// ThreadChecker affinity guard, and the runtime lock-hierarchy analyzer —
// a deliberate rank inversion, an acquired-after graph cycle, a recursive
// acquisition and an unheld release must all die with both stacks printed.
//
// The static half of the layer is exercised by the CI clang job: the whole
// tree builds with -Wthread-safety -Werror=thread-safety, and this file
// doubles as the negative-compile proof (see the #ifdef block below).

#include "src/common/sync.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nyx {
namespace {

#ifdef NYX_SYNC_TEST_NEGATIVE_COMPILE
// Negative-compile check: reading a NYX_GUARDED_BY field with no lock held
// must be rejected by clang -Werror=thread-safety. The ci.yml clang job
// compiles this file with -DNYX_SYNC_TEST_NEGATIVE_COMPILE and asserts the
// compiler FAILS; the block is never part of a normal build.
struct NegativeCompileGuarded {
  Mutex mu{"test.negative_compile", LockRank::kAny};
  int value NYX_GUARDED_BY(mu) = 0;
};
int UnannotatedAccess(NegativeCompileGuarded& g) { return g.value; }
#endif

// Restores the analyzer toggle so a test cannot leak its setting into the
// rest of the binary (the default depends on NDEBUG and NYX_LOCK_DEBUG).
class ScopedLockDebug {
 public:
  explicit ScopedLockDebug(bool enabled) : was_(LockDebugEnabled()) {
    internal::SetLockDebugForTest(enabled);
  }
  ~ScopedLockDebug() { internal::SetLockDebugForTest(was_); }

 private:
  const bool was_;
};

struct GuardedCounter {
  Mutex mu{"test.counter", LockRank::kAny};
  uint64_t value NYX_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, MutualExclusionAcrossThreads) {
  GuardedCounter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25000; i++) {
        MutexLock lock(c.mu);
        c.value++;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  MutexLock lock(c.mu);
  EXPECT_EQ(c.value, 100000u);
}

TEST(MutexTest, StatsCountAcquisitions) {
  ResetSyncStats();
  Mutex mu("test.stats");
  { MutexLock lock(mu); }
  { MutexLock lock(mu); }
  { MutexLock lock(mu); }
  // Other machinery (the log mutex) may add to the totals, never subtract.
  EXPECT_GE(GetSyncStats().acquisitions, 3u);
}

TEST(MutexTest, StatsCountContention) {
  Mutex mu("test.contention");
  const uint64_t before = GetSyncStats().contended;
  // A blocked acquisition is only near-certain per attempt (the waiter
  // could be descheduled before its try_lock), so retry until observed.
  for (int attempt = 0; attempt < 100 && GetSyncStats().contended == before;
       attempt++) {
    mu.Lock();
    std::atomic<bool> started{false};
    std::thread waiter([&] {
      started.store(true);
      MutexLock lock(mu);
    });
    while (!started.load()) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    mu.Unlock();
    waiter.join();
  }
  EXPECT_GT(GetSyncStats().contended, before);
}

TEST(CondVarTest, SignalsAcrossThreads) {
  Mutex mu("test.condvar");
  CondVar cv;
  int stage = 0;
  std::thread peer([&] {
    MutexLock lock(mu);
    stage = 1;
    cv.NotifyAll();
    while (stage != 2) {
      cv.Wait(mu);
    }
  });
  {
    MutexLock lock(mu);
    while (stage != 1) {
      cv.Wait(mu);
    }
    stage = 2;
    cv.NotifyAll();
  }
  peer.join();
  MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

TEST(ThreadCheckerTest, AttachesToFirstCallerAndDetaches) {
  ThreadChecker checker;
  EXPECT_TRUE(checker.CalledOnValidThread());
  EXPECT_TRUE(checker.CalledOnValidThread());

  bool from_other = true;
  std::thread other([&] { from_other = checker.CalledOnValidThread(); });
  other.join();
  EXPECT_FALSE(from_other);

  checker.Detach();
  std::thread adopted([&] { from_other = checker.CalledOnValidThread(); });
  adopted.join();
  EXPECT_TRUE(from_other);
  // Ownership moved: the original thread no longer qualifies.
  EXPECT_FALSE(checker.CalledOnValidThread());
}

TEST(LockHierarchyTest, CorrectRankOrderSurvives) {
  ScopedLockDebug debug(true);
  Mutex low("test.ordered_low", LockRank::kFrontier);
  Mutex high("test.ordered_high", LockRank::kLog);
  for (int i = 0; i < 3; i++) {
    MutexLock a(low);
    MutexLock b(high);
  }
}

TEST(LockHierarchyTest, RepeatedConsistentOrderSurvivesGraphCheck) {
  ScopedLockDebug debug(true);
  Mutex a("test.graph_ok_a");
  Mutex b("test.graph_ok_b");
  Mutex c("test.graph_ok_c");
  for (int i = 0; i < 3; i++) {
    MutexLock la(a);
    MutexLock lb(b);
    MutexLock lc(c);
  }
  {
    // a -> c directly is consistent with a -> b -> c: no cycle.
    MutexLock la(a);
    MutexLock lc(c);
  }
}

// The analyzer's own checks are statically invisible (ranks are runtime
// state), but a recursive acquisition and an unheld release are exactly
// what -Wthread-safety would reject at compile time — hide the deliberate
// misuse from the analysis so the *runtime* analyzer gets to catch it.
void RecursiveAcquire(Mutex& mu) NYX_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu);
  mu.Lock();
}

void UnheldRelease(Mutex& mu) NYX_NO_THREAD_SAFETY_ANALYSIS { mu.Unlock(); }

using LockHierarchyDeathTest = ::testing::Test;

TEST(LockHierarchyDeathTest, RankInversionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex low("test.inversion_low", LockRank::kFrontier);
        Mutex high("test.inversion_high", LockRank::kLog);
        MutexLock a(high);
        MutexLock b(low);  // rank 10 under rank 100: inversion
      },
      "rank inversion");
}

TEST(LockHierarchyDeathTest, SameRankNestingDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex one("test.samerank_one", LockRank::kFrontier);
        Mutex two("test.samerank_two", LockRank::kFrontier);
        MutexLock a(one);
        MutexLock b(two);
      },
      "rank inversion");
}

TEST(LockHierarchyDeathTest, AcquiredAfterCycleDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex a("test.cycle_a");
        Mutex b("test.cycle_b");
        {
          MutexLock la(a);
          MutexLock lb(b);  // records a -> b
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle
        }
      },
      "acquired-after cycle");
}

TEST(LockHierarchyDeathTest, TransitiveCycleDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex a("test.tcycle_a");
        Mutex b("test.tcycle_b");
        Mutex c("test.tcycle_c");
        {
          MutexLock la(a);
          MutexLock lb(b);  // a -> b
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);  // b -> c
        }
        {
          MutexLock lc(c);
          MutexLock la(a);  // c -> a: cycle through b
        }
      },
      "acquired-after cycle");
}

TEST(LockHierarchyDeathTest, RecursiveAcquisitionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex mu("test.recursive");
        RecursiveAcquire(mu);
      },
      "recursive acquisition");
}

TEST(LockHierarchyDeathTest, UnheldReleaseDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        internal::SetLockDebugForTest(true);
        Mutex mu("test.unheld");
        UnheldRelease(mu);
      },
      "does not hold");
}

}  // namespace
}  // namespace nyx
