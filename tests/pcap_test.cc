// Tests for PCAP parsing, frame decoding, TCP reassembly, stream splitters
// and end-to-end seed conversion.

#include <gtest/gtest.h>

#include "src/spec/pcap.h"

namespace nyx {
namespace {

constexpr uint32_t kClientIp = 0x0a000001;
constexpr uint32_t kServerIp = 0x0a000002;

PcapPacket Frame(Bytes frame) {
  PcapPacket p;
  p.ts_sec = 1;
  p.frame = std::move(frame);
  return p;
}

TEST(PcapTest, WriteParseRoundTrip) {
  std::vector<PcapPacket> pkts;
  pkts.push_back(Frame(BuildTcpFrame(kClientIp, kServerIp, 40000, 21, 1, ToBytes("USER x\r\n"))));
  pkts.push_back(Frame(BuildUdpFrame(kClientIp, kServerIp, 40001, 53, ToBytes("\x12\x34"))));
  Bytes raw = PcapFile::Write(pkts);
  auto parsed = PcapFile::Parse(raw);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->packets().size(), 2u);
  EXPECT_EQ(parsed->packets()[0].frame, pkts[0].frame);
}

TEST(PcapTest, ParseRejectsGarbage) {
  EXPECT_FALSE(PcapFile::Parse({}).has_value());
  EXPECT_FALSE(PcapFile::Parse(ToBytes("definitely not pcap data....")).has_value());
  // Truncated packet record.
  std::vector<PcapPacket> pkts = {
      Frame(BuildTcpFrame(kClientIp, kServerIp, 1, 2, 0, ToBytes("xx")))};
  Bytes raw = PcapFile::Write(pkts);
  raw.resize(raw.size() - 1);
  EXPECT_FALSE(PcapFile::Parse(raw).has_value());
}

TEST(PcapTest, DecodeTcpFrame) {
  Bytes frame = BuildTcpFrame(kClientIp, kServerIp, 40000, 8080, 1234, ToBytes("GET /"));
  auto flow = DecodeFrame(frame);
  ASSERT_TRUE(flow.has_value());
  EXPECT_TRUE(flow->is_tcp);
  EXPECT_EQ(flow->src_ip, kClientIp);
  EXPECT_EQ(flow->dst_ip, kServerIp);
  EXPECT_EQ(flow->src_port, 40000);
  EXPECT_EQ(flow->dst_port, 8080);
  EXPECT_EQ(flow->seq, 1234u);
  EXPECT_EQ(ToString(flow->payload), "GET /");
}

TEST(PcapTest, DecodeUdpFrame) {
  Bytes frame = BuildUdpFrame(kClientIp, kServerIp, 5000, 53, ToBytes("q"));
  auto flow = DecodeFrame(frame);
  ASSERT_TRUE(flow.has_value());
  EXPECT_FALSE(flow->is_tcp);
  EXPECT_EQ(flow->dst_port, 53);
  EXPECT_EQ(ToString(flow->payload), "q");
}

TEST(PcapTest, DecodeRejectsShortAndNonIpv4) {
  EXPECT_FALSE(DecodeFrame({}).has_value());
  EXPECT_FALSE(DecodeFrame(Bytes(10, 0)).has_value());
  Bytes arp(64, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;  // ARP ethertype
  EXPECT_FALSE(DecodeFrame(arp).has_value());
  // IPv6 version nibble.
  Bytes v6 = BuildTcpFrame(kClientIp, kServerIp, 1, 2, 0, ToBytes("x"));
  v6[14] = 0x65;
  EXPECT_FALSE(DecodeFrame(v6).has_value());
}

TEST(ReassemblerTest, InOrder) {
  StreamReassembler r;
  r.AddSegment(100, ToBytes("AB"));
  r.AddSegment(102, ToBytes("CD"));
  EXPECT_EQ(ToString(r.Assemble()), "ABCD");
}

TEST(ReassemblerTest, OutOfOrderAndDuplicates) {
  StreamReassembler r;
  r.AddSegment(102, ToBytes("CD"));
  r.AddSegment(100, ToBytes("AB"));
  r.AddSegment(100, ToBytes("AB"));  // retransmission
  EXPECT_EQ(ToString(r.Assemble()), "ABCD");
}

TEST(ReassemblerTest, OverlappingRetransmission) {
  StreamReassembler r;
  r.AddSegment(100, ToBytes("ABCD"));
  r.AddSegment(102, ToBytes("CDEF"));  // overlaps 2 bytes
  EXPECT_EQ(ToString(r.Assemble()), "ABCDEF");
}

TEST(ReassemblerTest, EmptySegmentsIgnored) {
  StreamReassembler r;
  r.AddSegment(5, {});
  EXPECT_TRUE(r.Assemble().empty());
}

TEST(SplitTest, CrlfSplitter) {
  Bytes stream = ToBytes("USER x\r\nPASS y\r\nQUIT");
  auto parts = SplitStream(stream, SplitStrategy::kCrlf);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(ToString(parts[0]), "USER x\r\n");
  EXPECT_EQ(ToString(parts[1]), "PASS y\r\n");
  EXPECT_EQ(ToString(parts[2]), "QUIT");  // trailing partial line kept
}

TEST(SplitTest, LengthPrefix16) {
  Bytes stream;
  PutBe16(stream, 3);
  Append(stream, "abc");
  PutBe16(stream, 1);
  Append(stream, "z");
  auto parts = SplitStream(stream, SplitStrategy::kLengthPrefixBe16);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size(), 5u);
  EXPECT_EQ(parts[1].size(), 3u);
}

TEST(SplitTest, LengthPrefixMalformedTailKept) {
  Bytes stream;
  PutBe16(stream, 100);  // claims more than available
  Append(stream, "xy");
  auto parts = SplitStream(stream, SplitStrategy::kLengthPrefixBe16);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 4u);
}

TEST(SplitTest, SegmentKeepsWhole) {
  auto parts = SplitStream(ToBytes("whole"), SplitStrategy::kSegment);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_TRUE(SplitStream({}, SplitStrategy::kSegment).empty());
}

TEST(PcapSeedTest, EndToEndTcpCrlf) {
  // A capture mixing both directions; only client->server:21 counts.
  std::vector<PcapPacket> pkts;
  pkts.push_back(
      Frame(BuildTcpFrame(kServerIp, kClientIp, 21, 40000, 900, ToBytes("220 ready\r\n"))));
  pkts.push_back(
      Frame(BuildTcpFrame(kClientIp, kServerIp, 40000, 21, 1, ToBytes("USER anon\r\nPASS"))));
  pkts.push_back(Frame(BuildTcpFrame(kClientIp, kServerIp, 40000, 21, 16, ToBytes(" x\r\n"))));
  Bytes raw = PcapFile::Write(pkts);

  Spec spec = Spec::GenericNetwork();
  auto prog = ProgramFromPcap(spec, raw, 21, SplitStrategy::kCrlf);
  ASSERT_TRUE(prog.has_value());
  EXPECT_TRUE(prog->Validate(spec));
  auto packets = prog->PacketOpIndices(spec);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(ToString(prog->ops[packets[0]].data), "USER anon\r\n");
  EXPECT_EQ(ToString(prog->ops[packets[1]].data), "PASS x\r\n");
}

TEST(PcapSeedTest, UdpDatagramsKeepBoundaries) {
  std::vector<PcapPacket> pkts;
  pkts.push_back(Frame(BuildUdpFrame(kClientIp, kServerIp, 5353, 53, ToBytes("query-1"))));
  pkts.push_back(Frame(BuildUdpFrame(kClientIp, kServerIp, 5353, 53, ToBytes("query-2"))));
  Bytes raw = PcapFile::Write(pkts);
  Spec spec = Spec::GenericNetwork();
  auto prog = ProgramFromPcap(spec, raw, 53, SplitStrategy::kCrlf);
  ASSERT_TRUE(prog.has_value());
  auto packets = prog->PacketOpIndices(spec);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(ToString(prog->ops[packets[0]].data), "query-1");
}

TEST(PcapSeedTest, NoMatchingTrafficFails) {
  std::vector<PcapPacket> pkts;
  pkts.push_back(Frame(BuildTcpFrame(kClientIp, kServerIp, 1, 9999, 0, ToBytes("x"))));
  Bytes raw = PcapFile::Write(pkts);
  Spec spec = Spec::GenericNetwork();
  EXPECT_FALSE(ProgramFromPcap(spec, raw, 21, SplitStrategy::kCrlf).has_value());
  EXPECT_FALSE(ProgramFromPcap(spec, ToBytes("junk"), 21, SplitStrategy::kCrlf).has_value());
}

TEST(PcapSeedTest, SegmentStrategyUsesCaptureOrder) {
  std::vector<PcapPacket> pkts;
  pkts.push_back(Frame(BuildTcpFrame(kClientIp, kServerIp, 40000, 3306, 1, ToBytes("AA"))));
  pkts.push_back(Frame(BuildTcpFrame(kClientIp, kServerIp, 40000, 3306, 3, ToBytes("BBB"))));
  Bytes raw = PcapFile::Write(pkts);
  Spec spec = Spec::GenericNetwork();
  auto prog = ProgramFromPcap(spec, raw, 3306, SplitStrategy::kSegment);
  ASSERT_TRUE(prog.has_value());
  auto packets = prog->PacketOpIndices(spec);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(ToString(prog->ops[packets[0]].data), "AA");
  EXPECT_EQ(ToString(prog->ops[packets[1]].data), "BBB");
}

}  // namespace
}  // namespace nyx
