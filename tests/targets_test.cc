// Tests for the protocol targets: boot/seed smoke tests across the whole
// registry (parameterized), determinism, and one directed reproducer per
// seeded bug verifying the exact crash id from Table 1 / the case studies.

#include <gtest/gtest.h>

#include "src/fuzz/engine.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

EngineConfig SmallEngineConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 512;
  cfg.vm.disk_sectors = 256;
  return cfg;
}

class AllTargetsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllTargetsTest, BootsAndBlocksOnInput) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  EXPECT_TRUE(engine.vm().has_root());
  EXPECT_TRUE(engine.net().blocked_on_input());
  EXPECT_FALSE(engine.net().consumed_input());
}

TEST_P(AllTargetsTest, SeedsRunCleanAndProduceCoverage) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  const auto seeds = reg->make_seeds(spec);
  ASSERT_FALSE(seeds.empty());
  GlobalCoverage global;
  for (const Program& seed : seeds) {
    ASSERT_TRUE(seed.Validate(spec));
    CoverageMap cov;
    ExecResult r = engine.Run(seed, cov);
    EXPECT_FALSE(r.crash.crashed)
        << GetParam() << " seed crashed: " << r.crash.kind;
    EXPECT_GT(r.packets_delivered, 0u) << GetParam();
    global.MergeAndCheckNew(cov);
  }
  // Valid seeds must exercise a meaningful slice of the parser.
  EXPECT_GE(global.SiteCount(), 10u) << GetParam();
}

TEST_P(AllTargetsTest, SeedsAreDeterministic) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  const Program seed = reg->make_seeds(spec)[0];
  CoverageMap warm;
  engine.Run(seed, warm);
  CoverageMap a;
  CoverageMap b;
  ExecResult ra = engine.Run(seed, a);
  ExecResult rb = engine.Run(seed, b);
  EXPECT_EQ(a.map(), b.map()) << GetParam();
  EXPECT_EQ(ra.vtime_ns, rb.vtime_ns) << GetParam();
}

std::vector<std::string> TargetNames() {
  std::vector<std::string> names;
  for (const auto& t : AllTargets()) {
    names.push_back(t.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllTargetsTest, ::testing::ValuesIn(TargetNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(RegistryTest, LookupAndCrashLists) {
  EXPECT_EQ(AllTargets().size(), 16u);
  EXPECT_FALSE(FindTarget("nope").has_value());
  auto exim = FindTarget("exim");
  ASSERT_TRUE(exim.has_value());
  ASSERT_EQ(exim->known_crashes.size(), 1u);
  EXPECT_EQ(exim->known_crashes[0], kCrashEximHeaderOverflow);
  size_t profuzz = 0;
  for (const auto& t : AllTargets()) {
    profuzz += t.in_profuzzbench ? 1 : 0;
  }
  EXPECT_EQ(profuzz, 13u);  // the ProFuzzBench suite
}

// ---- Directed reproducers for every seeded bug ----

ExecResult RunRaw(const std::string& target, std::initializer_list<Bytes> packets,
                  bool asan = false, uint64_t seed = 1) {
  auto reg = FindTarget(target);
  Spec spec = reg->make_spec();
  EngineConfig cfg = SmallEngineConfig();
  cfg.asan = asan;
  cfg.seed = seed;
  NyxEngine engine(cfg, reg->factory, spec);
  engine.Boot();
  Builder b(spec);
  ValueRef con = b.Connection();
  for (const Bytes& p : packets) {
    b.Packet(con, p);
  }
  CoverageMap cov;
  return engine.Run(*b.Build(), cov);
}

TEST(BugReproTest, DnsmasqCompressionPointerOob) {
  // Query whose name starts with a valid pointer that targets a second
  // pointer pointing past the end of the datagram.
  Bytes q = {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  q.push_back(0xc0);
  q.push_back(14);  // pointer to offset 14 (the next two bytes)
  q.push_back(0xc0);
  q.push_back(0xff);  // nested pointer past the end -> OOB read
  ExecResult r = RunRaw("dnsmasq", {q});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashDnsmasqOobRead);
}

TEST(BugReproTest, TinyDtlsFragmentLengthOob) {
  // Handshake record whose fragment_length exceeds the record body.
  Bytes hs = {1, 0, 4, 0, 0, 0, 0, 0, 0, 0, 2, 0};  // msg_len 1024, frag_len 512
  Bytes rec = {22, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0};
  PutBe16(rec, static_cast<uint16_t>(hs.size()));
  Append(rec, hs);
  ExecResult r = RunRaw("tinydtls", {rec});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashTinyDtlsFragLen);
}

TEST(BugReproTest, Live555RangeWithoutSession) {
  ExecResult r = RunRaw(
      "live555", {ToBytes("PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\nRange: npt=-\r\n\r\n")});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashLive555RangeNull);
}

TEST(BugReproTest, EximLongHeaderAfterFullSession) {
  std::string long_header = "X-Envelope-To: *";
  long_header.append(100, 'A');
  long_header += "@*.example.com";
  ExecResult r = RunRaw("exim", {ToBytes("EHLO h\r\n"), ToBytes("MAIL FROM:<a@b>\r\n"),
                                 ToBytes("RCPT TO:<c@d>\r\n"), ToBytes("DATA\r\n"),
                                 ToBytes(long_header + "\r\n")});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashEximHeaderOverflow);
}

TEST(BugReproTest, EximShortHeaderIsSafe) {
  ExecResult r = RunRaw("exim", {ToBytes("EHLO h\r\n"), ToBytes("MAIL FROM:<a@b>\r\n"),
                                 ToBytes("RCPT TO:<c@d>\r\n"), ToBytes("DATA\r\n"),
                                 ToBytes("X-Short: ok\r\n"), ToBytes(".\r\n")});
  EXPECT_FALSE(r.crash.crashed);
}

TEST(BugReproTest, ProftpdDanglingCwd) {
  ExecResult r = RunRaw(
      "proftpd", {ToBytes("USER u\r\n"), ToBytes("PASS p\r\n"), ToBytes("MKD a/b/c/d\r\n"),
                  ToBytes("CWD a/b/c/d\r\n"), ToBytes("RMD a/b/c/d\r\n"), ToBytes("LIST\r\n")});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashProftpdMkdNull);
}

TEST(BugReproTest, ProftpdShallowRmdIsSafe) {
  ExecResult r = RunRaw(
      "proftpd", {ToBytes("USER u\r\n"), ToBytes("PASS p\r\n"), ToBytes("MKD a\r\n"),
                  ToBytes("CWD a\r\n"), ToBytes("RMD a\r\n"), ToBytes("LIST\r\n")});
  EXPECT_FALSE(r.crash.crashed);
}

TEST(BugReproTest, LighttpdNegativeContentLength) {
  ExecResult r = RunRaw(
      "lighttpd",
      {ToBytes("POST /up HTTP/1.1\r\nHost: x\r\nContent-Length: -7\r\n\r\n")});
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashLighttpdAllocUnderflow);
}

TEST(BugReproTest, MysqlClientTooManyColumns) {
  auto pkt = [](uint8_t seq, Bytes payload) {
    Bytes p = {static_cast<uint8_t>(payload.size()),
               static_cast<uint8_t>(payload.size() >> 8),
               static_cast<uint8_t>(payload.size() >> 16), seq};
    Append(p, payload);
    return p;
  };
  Bytes greeting;
  greeting.push_back(10);
  Append(greeting, "8.0");
  greeting.push_back(0);
  greeting.resize(32, 0x5a);
  std::vector<Bytes> packets;
  packets.push_back(pkt(0, greeting));
  packets.push_back(pkt(2, {0x00, 0x00, 0x00, 0x02, 0x00, 0x00}));  // OK
  packets.push_back(pkt(1, {0xfc, 0x40, 0x00}));  // column count: 64
  for (uint8_t i = 0; i < 18; i++) {
    packets.push_back(pkt(static_cast<uint8_t>(2 + i), ToBytes("coldef")));
  }
  auto reg = FindTarget("mysql-client");
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  Builder b(spec);
  ValueRef con = b.Connection();
  for (const Bytes& p : packets) {
    b.Packet(con, p);
  }
  CoverageMap cov;
  ExecResult r = engine.Run(*b.Build(), cov);
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashMysqlClientOobRead);
}

TEST(BugReproTest, FirefoxIpcMessageToDeadActor) {
  auto msg = [](uint32_t actor, uint32_t type, Bytes payload) {
    Bytes m;
    PutLe32(m, actor);
    PutLe32(m, type);
    PutLe32(m, static_cast<uint32_t>(payload.size()));
    Append(m, payload);
    return m;
  };
  auto reg = FindTarget("firefox-ipc");
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  Builder b(spec);
  ValueRef c1 = b.Connection();
  b.Packet(c1, msg(0, 1, {4}));                  // construct PWindow -> actor 1
  b.Packet(c1, msg(1, 2, {}));                   // __delete__ actor 1
  b.Packet(c1, msg(1, 4, ToBytes("nav:boom")));  // message to dead actor
  CoverageMap cov;
  ExecResult r = engine.Run(*b.Build(), cov);
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashFirefoxIpcNullDeref);
}

Bytes DcmtkAssociate() {
  Bytes body;
  PutBe16(body, 1);
  PutBe16(body, 0);
  for (int i = 0; i < 32; i++) {
    body.push_back('A');
  }
  body.resize(68, 0);
  body.push_back(0x20);  // presentation context
  body.push_back(0);
  PutBe16(body, 4);
  PutBe32(body, 0);
  Bytes pdu = {0x01, 0};
  PutBe32(pdu, static_cast<uint32_t>(body.size()));
  Append(pdu, body);
  return pdu;
}

Bytes DcmtkElement(uint16_t declared_len, uint16_t actual_len) {
  Bytes pdv = {0x08, 0x00, 0x16, 0x00, static_cast<uint8_t>(declared_len),
               static_cast<uint8_t>(declared_len >> 8)};
  pdv.resize(pdv.size() + actual_len, 0x42);
  Bytes body;
  PutBe32(body, static_cast<uint32_t>(pdv.size()) + 2);
  body.push_back(1);
  body.push_back(2);
  Append(body, pdv);
  Bytes pdu = {0x04, 0};
  PutBe32(pdu, static_cast<uint32_t>(body.size()));
  Append(pdu, body);
  return pdu;
}

TEST(BugReproTest, DcmtkOverflowImmediateWithAsan) {
  // 300 bytes into a 128-byte buffer: instant ASan report.
  ExecResult r = RunRaw("dcmtk", {DcmtkAssociate(), DcmtkElement(300, 300)}, /*asan=*/true);
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashDcmtkOobWrite);
}

TEST(BugReproTest, DcmtkLatentWithoutAsanDependsOnLayout) {
  // Without ASan the same overflow is silent until the release path frees
  // the neighbouring allocation — and only if the campaign's heap layout
  // put the neighbour within reach. Across seeds, both outcomes must occur.
  Bytes release = {0x05, 0, 0, 0, 0, 4, 0, 0, 0, 0};
  int crashed = 0;
  int survived = 0;
  for (uint64_t seed = 1; seed <= 12; seed++) {
    auto reg = FindTarget("dcmtk");
    Spec spec = reg->make_spec();
    EngineConfig cfg = SmallEngineConfig();
    cfg.asan = false;
    cfg.seed = seed;
    NyxEngine engine(cfg, reg->factory, spec);
    engine.Boot();
    Builder b(spec);
    ValueRef con = b.Connection();
    b.Packet(con, DcmtkAssociate());
    b.Packet(con, DcmtkElement(700, 700));
    b.Packet(con, release);
    CoverageMap cov;
    ExecResult r = engine.Run(*b.Build(), cov);
    if (r.crash.crashed) {
      EXPECT_EQ(r.crash.crash_id, kCrashDcmtkLateHeap);
      crashed++;
    } else {
      survived++;
    }
  }
  EXPECT_GT(crashed, 0);
  EXPECT_GT(survived, 0);
}

TEST(BugReproTest, PureFtpdArenaSurvivesSnapshotResets) {
  // Snapshot-reset fuzzing can never accumulate enough leaked session state
  // to hit the internal cap: hundreds of executions stay clean.
  auto reg = FindTarget("pure-ftpd");
  Spec spec = reg->make_spec();
  NyxEngine engine(SmallEngineConfig(), reg->factory, spec);
  engine.Boot();
  const Program seed = reg->make_seeds(spec)[0];
  for (int i = 0; i < 300; i++) {
    CoverageMap cov;
    ExecResult r = engine.Run(seed, cov);
    ASSERT_FALSE(r.crash.crashed) << "exec " << i;
  }
}

}  // namespace
}  // namespace nyx
