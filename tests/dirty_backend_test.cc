// Tests for the pluggable dirty-tracking backends (src/vm/dirty_backend.h):
// mode-name parsing, availability probing, graceful fallback, the
// open/seal restore protocol, and the backend-parity property — every
// available backend must observe the identical dirty set for the same
// write workload.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/vm/guest_memory.h"

namespace nyx {
namespace {

// Backends worth head-to-head testing (software only sees explicit
// accessors, so it cannot run the raw-pointer workloads below).
const TrackingMode kHardwareModes[] = {TrackingMode::kMprotect, TrackingMode::kUffd,
                                       TrackingMode::kSoftDirty};

// Skips the calling test when `mode` cannot run here. The message avoids
// kernel-feature spellings the lint layer reserves for the backend itself.
#define SKIP_IF_UNAVAILABLE(mode)                                                       \
  do {                                                                                  \
    if (!TrackingModeAvailable(mode)) {                                                 \
      GTEST_SKIP() << TrackingModeName(mode) << " backend unavailable on this kernel"; \
    }                                                                                   \
  } while (0)

TEST(TrackingModeTest, NameRoundTrip) {
  for (TrackingMode mode : {TrackingMode::kMprotect, TrackingMode::kSoftware,
                            TrackingMode::kUffd, TrackingMode::kSoftDirty}) {
    EXPECT_EQ(TrackingModeFromName(TrackingModeName(mode), TrackingMode::kSoftware), mode);
  }
}

TEST(TrackingModeTest, UnknownOrEmptyNameFallsBackToDefault) {
  EXPECT_EQ(TrackingModeFromName("", TrackingMode::kMprotect), TrackingMode::kMprotect);
  EXPECT_EQ(TrackingModeFromName("hypercall", TrackingMode::kSoftDirty),
            TrackingMode::kSoftDirty);
}

TEST(TrackingModeTest, BaselineModesAlwaysAvailable) {
  EXPECT_TRUE(TrackingModeAvailable(TrackingMode::kMprotect));
  EXPECT_TRUE(TrackingModeAvailable(TrackingMode::kSoftware));
}

TEST(DirtyBackendTest, RingCapacityConfigurableAndExported) {
  GuestMemory mem(64, TrackingMode::kMprotect, 16);
  EXPECT_EQ(mem.tracker().ring_capacity(), 16u);
  EXPECT_EQ(telemetry::MetricRegistry::Global().RegisterGauge("vm.dirty_ring_capacity")->Value(),
            16u);
  mem.ArmTracking();
  for (uint32_t p = 0; p < 32; p++) {
    mem.base()[static_cast<size_t>(p) * kPageSize] = 1;
  }
  mem.SyncDirty();
  EXPECT_EQ(mem.tracker().ring_exits(), 2u);
}

TEST(DirtyBackendTest, FallbackToMprotectWhenUnavailable) {
  bool exercised = false;
  for (TrackingMode mode : {TrackingMode::kUffd, TrackingMode::kSoftDirty}) {
    if (TrackingModeAvailable(mode)) {
      continue;
    }
    exercised = true;
    GuestMemory mem(8, mode);
    EXPECT_EQ(mem.requested_mode(), mode);
    EXPECT_EQ(mem.mode(), TrackingMode::kMprotect);
    // The fallback still tracks.
    mem.ArmTracking();
    mem.base()[0] = 1;
    mem.SyncDirty();
    EXPECT_TRUE(mem.tracker().IsDirty(0));
  }
  if (!exercised) {
    GTEST_SKIP() << "every optional backend is available here; fallback path not reachable";
  }
}

TEST(DirtyBackendTest, SoftDirtyClaimIsExclusive) {
  SKIP_IF_UNAVAILABLE(TrackingMode::kSoftDirty);
  // clear_refs resets soft-dirty bits process-wide, so only one region may
  // own the backend; a second request falls back.
  GuestMemory first(8, TrackingMode::kSoftDirty);
  ASSERT_EQ(first.mode(), TrackingMode::kSoftDirty);
  GuestMemory second(8, TrackingMode::kSoftDirty);
  EXPECT_EQ(second.mode(), TrackingMode::kMprotect);
}

// Per-backend behavioural suite, one instantiation per available mode.
class BackendModeTest : public ::testing::TestWithParam<TrackingMode> {};

TEST_P(BackendModeTest, WritesLandInTracker) {
  SKIP_IF_UNAVAILABLE(GetParam());
  GuestMemory mem(32, GetParam());
  ASSERT_EQ(mem.mode(), GetParam());
  mem.ArmTracking();
  mem.base()[0] = 1;
  mem.base()[5 * kPageSize + 123] = 2;
  mem.SyncDirty();
  EXPECT_TRUE(mem.tracker().IsDirty(0));
  EXPECT_TRUE(mem.tracker().IsDirty(5));
  EXPECT_FALSE(mem.tracker().IsDirty(1));
  EXPECT_EQ(mem.base()[5 * kPageSize + 123], 2);
}

TEST_P(BackendModeTest, OpenForRestoreDoesNotDirty) {
  SKIP_IF_UNAVAILABLE(GetParam());
  GuestMemory mem(16, GetParam());
  ASSERT_EQ(mem.mode(), GetParam());
  mem.ArmTracking();
  mem.base()[2 * kPageSize] = 7;  // page 2 dirty
  mem.SyncDirty();
  const uint32_t pages[] = {2, 9};
  mem.OpenForRestore(pages, 2);  // page 9 opened clean, page 2 skipped (dirty)
  mem.base()[9 * kPageSize] = 0;
  mem.base()[2 * kPageSize] = 0;
  mem.SealAfterRestore();
  // The restore writes above never polluted the log...
  mem.SyncDirty();
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
  // ...and both pages are re-armed: new writes are tracked again.
  mem.base()[9 * kPageSize] = 1;
  mem.base()[2 * kPageSize] = 1;
  mem.SyncDirty();
  EXPECT_TRUE(mem.tracker().IsDirty(9));
  EXPECT_TRUE(mem.tracker().IsDirty(2));
}

TEST_P(BackendModeTest, ReArmAfterCaptureTracksAgain) {
  SKIP_IF_UNAVAILABLE(GetParam());
  GuestMemory mem(16, GetParam());
  ASSERT_EQ(mem.mode(), GetParam());
  mem.ArmTracking();
  mem.base()[3 * kPageSize] = 1;
  mem.SyncDirty();
  ASSERT_TRUE(mem.tracker().IsDirty(3));
  mem.ReArmDirtyPages();
  EXPECT_EQ(mem.tracker().stack_size(), 0u);
  mem.base()[3 * kPageSize] = 2;
  mem.SyncDirty();
  EXPECT_TRUE(mem.tracker().IsDirty(3));
  EXPECT_EQ(mem.tracker().stack_size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BackendModeTest, ::testing::ValuesIn(kHardwareModes),
                         [](const ::testing::TestParamInfo<TrackingMode>& info) {
                           return std::string(TrackingModeName(info.param));
                         });

// The parity property: the same random write workload, replayed through
// every available backend, must produce the identical dirty set.
class BackendParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendParityTest, AllBackendsAgreeOnDirtySet) {
  constexpr size_t kPages = 128;
  std::set<uint32_t> expected;
  std::vector<std::set<uint32_t>> observed;
  std::vector<TrackingMode> ran;
  for (TrackingMode mode : kHardwareModes) {
    if (!TrackingModeAvailable(mode)) {
      continue;
    }
    GuestMemory mem(kPages, mode);
    ASSERT_EQ(mem.mode(), mode);
    mem.ArmTracking();
    Rng rng(GetParam());  // identical workload per backend
    std::set<uint32_t> writes;
    for (int i = 0; i < 400; i++) {
      const uint64_t off = rng.Below(mem.size_bytes());
      mem.base()[off] = rng.NextByte();
      writes.insert(PageOf(off));
    }
    mem.SyncDirty();
    std::set<uint32_t> dirty(mem.tracker().stack_data(),
                             mem.tracker().stack_data() + mem.tracker().stack_size());
    EXPECT_EQ(dirty, writes) << TrackingModeName(mode) << " missed or invented dirt";
    expected = writes;
    observed.push_back(std::move(dirty));
    ran.push_back(mode);
  }
  ASSERT_GE(ran.size(), 1u);  // mprotect always runs
  for (size_t i = 0; i < observed.size(); i++) {
    EXPECT_EQ(observed[i], expected) << TrackingModeName(ran[i]) << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendParityTest, ::testing::Values(1, 2, 3, 7, 9001));

}  // namespace
}  // namespace nyx
