// Tests for DeviceState: fast copy reset, QEMU-style serialization round
// trip, and rejection of malformed blobs (failure injection).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/vm/device_state.h"

namespace nyx {
namespace {

DeviceState MakeState() {
  DeviceState s;
  s.AddDevice("serial", 16);
  s.AddDevice("nic", 64);
  for (size_t i = 0; i < 16; i++) {
    s.regs(0)[i] = static_cast<uint8_t>(i);
  }
  for (size_t i = 0; i < 64; i++) {
    s.regs(1)[i] = static_cast<uint8_t>(255 - i);
  }
  return s;
}

TEST(DeviceStateTest, TotalBytes) {
  DeviceState s = MakeState();
  EXPECT_EQ(s.total_bytes(), 80u);
  EXPECT_EQ(s.device_count(), 2u);
  EXPECT_EQ(s.name(0), "serial");
}

TEST(DeviceStateTest, FastCopyRestoresRegisters) {
  DeviceState s = MakeState();
  DeviceState saved = MakeState();
  s.regs(0)[3] = 0xff;
  s.regs(1)[10] = 0xff;
  EXPECT_FALSE(s == saved);
  s.CopyFrom(saved);
  EXPECT_TRUE(s == saved);
}

TEST(DeviceStateTest, SerializeRoundTrip) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  DeviceState t = MakeState();
  t.regs(0)[0] = 0x99;
  EXPECT_TRUE(t.Deserialize(blob));
  EXPECT_TRUE(t == s);
}

TEST(DeviceStateTest, DeserializeRejectsBadMagic) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  blob[0] ^= 0xff;
  EXPECT_FALSE(s.Deserialize(blob));
}

TEST(DeviceStateTest, DeserializeRejectsTruncated) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(s.Deserialize(blob));
}

TEST(DeviceStateTest, DeserializeRejectsWrongLayout) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  DeviceState other;
  other.AddDevice("serial", 16);  // missing the second device
  EXPECT_FALSE(other.Deserialize(blob));
}

TEST(DeviceStateTest, DeserializeRejectsTrailingGarbage) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  blob.push_back(0);
  EXPECT_FALSE(s.Deserialize(blob));
}

TEST(DeviceStateTest, DeserializeRejectsCorruptFieldTag) {
  DeviceState s = MakeState();
  Bytes blob = s.Serialize();
  // Field tags start after magic+count+name_len+name+reg_len.
  size_t tag_off = 4 + 4 + 4 + 6 + 4;
  blob[tag_off] ^= 0x40;
  EXPECT_FALSE(s.Deserialize(blob));
}

TEST(DeviceStateTest, DeserializeSurvivesRandomCorruption) {
  // Snapshot aux blobs are engine-produced, but a Deserialize that can be
  // walked out of bounds by a flipped length field is a time bomb. 10k
  // random corruptions of a valid blob: every one must either be rejected
  // or produce a state that round-trips — never crash or hang.
  const Bytes good = MakeState().Serialize();
  Rng rng(0x5eed);
  for (int iter = 0; iter < 10000; iter++) {
    Bytes blob = good;
    switch (rng.Below(4)) {
      case 0:  // flip 1..8 random bytes
        for (uint64_t k = rng.Range(1, 8); k > 0; k--) {
          blob[rng.Below(blob.size())] ^= static_cast<uint8_t>(rng.Range(1, 255));
        }
        break;
      case 1:  // truncate
        blob.resize(rng.Below(blob.size()));
        break;
      case 2:  // extend with junk
        for (uint64_t k = rng.Range(1, 16); k > 0; k--) {
          blob.push_back(rng.NextByte());
        }
        break;
      default:  // overwrite a 32-bit field with an extreme value
        if (blob.size() >= 4) {
          const size_t at = rng.Below(blob.size() - 3);
          const uint32_t v = rng.Chance(1, 2) ? 0xffffffffu : 0x7fffffffu;
          blob[at] = static_cast<uint8_t>(v);
          blob[at + 1] = static_cast<uint8_t>(v >> 8);
          blob[at + 2] = static_cast<uint8_t>(v >> 16);
          blob[at + 3] = static_cast<uint8_t>(v >> 24);
        }
        break;
    }
    DeviceState victim = MakeState();
    if (victim.Deserialize(blob)) {
      // Accepted (corruption hit a don't-care byte or cancelled out): the
      // resulting state must itself serialize and parse cleanly.
      DeviceState check = MakeState();
      EXPECT_TRUE(check.Deserialize(victim.Serialize())) << "iteration " << iter;
    }
  }
}

}  // namespace
}  // namespace nyx
