// Tests for on-disk campaign state: queue/crash persistence, resumption and
// malformed-file tolerance.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "src/fuzz/workdir.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

class WorkdirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/nyx-workdir-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    base_ = tmpl;
  }

  void TearDown() override {
    std::string cmd = "rm -rf " + base_;
    ASSERT_EQ(system(cmd.c_str()), 0);
  }

  std::string base_;
};

Program MakeProgram(const Spec& spec, const std::string& payload) {
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, payload + "\r\n");
  return *b.Build();
}

TEST_F(WorkdirTest, OpenCreatesLayout) {
  auto wd = Workdir::Open(base_ + "/campaign");
  ASSERT_TRUE(wd.has_value());
  // Re-opening an existing workdir succeeds.
  EXPECT_TRUE(Workdir::Open(base_ + "/campaign").has_value());
}

TEST_F(WorkdirTest, OpenFailsOnFileCollision) {
  FILE* f = fopen((base_ + "/not-a-dir").c_str(), "w");
  ASSERT_NE(f, nullptr);
  fclose(f);
  EXPECT_FALSE(Workdir::Open(base_ + "/not-a-dir").has_value());
}

TEST_F(WorkdirTest, QueueRoundTrip) {
  Spec spec = Spec::GenericNetwork();
  auto wd = Workdir::Open(base_ + "/c");
  ASSERT_TRUE(wd.has_value());
  EXPECT_TRUE(wd->SaveQueueEntry(MakeProgram(spec, "USER a"), 0));
  EXPECT_TRUE(wd->SaveQueueEntry(MakeProgram(spec, "USER b"), 1));
  std::vector<Program> loaded = wd->LoadQueue(spec);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(ToString(loaded[0].ops[1].data), "USER a\r\n");
  EXPECT_EQ(ToString(loaded[1].ops[1].data), "USER b\r\n");
}

TEST_F(WorkdirTest, MalformedQueueFilesAreSkipped) {
  Spec spec = Spec::GenericNetwork();
  auto wd = Workdir::Open(base_ + "/c");
  ASSERT_TRUE(wd.has_value());
  wd->SaveQueueEntry(MakeProgram(spec, "GOOD"), 0);
  FILE* f = fopen((base_ + "/c/queue/id_999999.nyx").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not bytecode", f);
  fclose(f);
  std::vector<Program> loaded = wd->LoadQueue(spec);
  ASSERT_EQ(loaded.size(), 1u);
}

TEST_F(WorkdirTest, CrashRoundTrip) {
  Spec spec = Spec::GenericNetwork();
  auto wd = Workdir::Open(base_ + "/c");
  ASSERT_TRUE(wd.has_value());
  EXPECT_TRUE(wd->SaveCrash(0xdeadbeef, "null-deref", MakeProgram(spec, "BOOM")));
  auto crashes = wd->LoadCrashes(spec);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_NE(crashes[0].first.find("deadbeef_null-deref"), std::string::npos);
  EXPECT_EQ(ToString(crashes[0].second.ops[1].data), "BOOM\r\n");
}

TEST_F(WorkdirTest, SaveCampaignWritesEverything) {
  Spec spec = Spec::GenericNetwork();
  auto wd = Workdir::Open(base_ + "/c");
  ASSERT_TRUE(wd.has_value());
  Corpus corpus;
  corpus.Add(MakeProgram(spec, "A"), 100, 1, 0.0);
  corpus.Add(MakeProgram(spec, "B"), 100, 1, 0.0);
  CampaignResult result;
  result.execs = 1234;
  result.vtime_seconds = 5.0;
  result.branch_coverage = 42;
  CrashRecord rec;
  rec.kind = "test-crash";
  rec.count = 3;
  rec.reproducer = MakeProgram(spec, "CRASH");
  result.crashes[0x1111] = rec;
  ASSERT_TRUE(wd->SaveCampaign(result, corpus));

  EXPECT_EQ(wd->LoadQueue(spec).size(), 2u);
  EXPECT_EQ(wd->LoadCrashes(spec).size(), 1u);
  FILE* stats = fopen((base_ + "/c/stats.txt").c_str(), "r");
  ASSERT_NE(stats, nullptr);
  char buf[512];
  size_t n = fread(buf, 1, sizeof(buf) - 1, stats);
  buf[n] = '\0';
  fclose(stats);
  EXPECT_NE(std::string(buf).find("execs            1234"), std::string::npos);
  EXPECT_NE(std::string(buf).find("branch_coverage  42"), std::string::npos);
}

TEST_F(WorkdirTest, CrashReproducerReplaysInEngine) {
  // End-to-end: save a crashing input, load it back, replay it — the crash
  // must reproduce exactly (the repro workflow of the nyx-net CLI).
  auto reg = FindTarget("lighttpd");
  Spec spec = reg->make_spec();
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "POST /u HTTP/1.1\r\nContent-Length: -9\r\n\r\n");
  Program crasher = *b.Build();

  auto wd = Workdir::Open(base_ + "/c");
  ASSERT_TRUE(wd.has_value());
  ASSERT_TRUE(wd->SaveCrash(kCrashLighttpdAllocUnderflow, "underflow", crasher));
  auto crashes = wd->LoadCrashes(spec);
  ASSERT_EQ(crashes.size(), 1u);

  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  NyxEngine engine(cfg, reg->factory, spec);
  engine.Boot();
  CoverageMap cov;
  ExecResult r = engine.Run(crashes[0].second, cov);
  ASSERT_TRUE(r.crash.crashed);
  EXPECT_EQ(r.crash.crash_id, kCrashLighttpdAllocUnderflow);
}

}  // namespace
}  // namespace nyx
